//! The Variable Memory Markov model learned via a Prediction Suffix Tree —
//! §IV-B of the paper.
//!
//! Training (three stages, §IV-B.1):
//! * **(a)** extract candidate suffix contexts `S′` from the window trie
//!   (length ≤ D, continuation support ≥ the filter threshold);
//! * **(b)** grow the PST: every length-1 candidate is added; a longer
//!   candidate `s` is added — together with all its suffixes, keeping the
//!   state set suffix-closed — iff `D_KL(P(·|parent(s)) ‖ P(·|s)) > ε`
//!   in base 10, where `parent(s) = s[1..]`. Both the divergence direction
//!   and the log base are pinned by the paper's published numbers
//!   (0.3449 / 0.0837 for the Table II corpus). The divergence is computed
//!   by a merged walk over the two id-sorted continuation slices borrowed
//!   from the arena — no per-candidate hash map is built;
//! * **(c)** smooth every node distribution with the constant 1/|Q| for
//!   unobserved queries and renormalize.
//!
//! Prediction walks the longest matching suffix in O(D·log m) with no
//! allocation. The context-escape mechanism of Eq. (5)–(6) is served by the
//! same window trie the counts were collected in (the trained model keeps
//! the frozen arena as its escape table).

use crate::counts::{escape_prob_in, WindowCounts};
use crate::model::{Recommender, SequenceScorer, WeightedSessions};
use crate::pst::{NodeDist, Pst};
use sqp_common::arena::SuffixTrie;
use sqp_common::topk::Scored;
use sqp_common::{FxHashSet, QueryId, QuerySeq};

/// VMM training parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VmmConfig {
    /// PST growth threshold ε; 0 admits every candidate, +∞ degenerates to
    /// the Adjacency-like 2-gram (Fig 4 of the paper).
    pub epsilon: f64,
    /// Context-length bound D; `None` = unbounded ("infinite order").
    pub max_depth: Option<usize>,
    /// Minimum continuation support for a candidate context.
    pub min_support: u64,
    /// Shard window counting across threads. Results are bit-identical to
    /// sequential training (the arena layout is canonical), so this is
    /// purely a throughput knob; tiny corpora ignore it.
    pub parallel: bool,
}

impl Default for VmmConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            max_depth: None,
            min_support: 1,
            parallel: false,
        }
    }
}

impl VmmConfig {
    /// Convenience: unbounded VMM with the given ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }

    /// Convenience: D-bounded VMM with the given ε.
    pub fn bounded(max_depth: usize, epsilon: f64) -> Self {
        Self {
            epsilon,
            max_depth: Some(max_depth),
            ..Self::default()
        }
    }

    /// Enable (or disable) parallel counting.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Display name in the paper's style: "VMM (0.05)", "2-bounded VMM (0.1)".
    pub fn display_name(&self) -> String {
        match self.max_depth {
            Some(d) => format!("{d}-bounded VMM ({})", self.epsilon),
            None => format!("VMM ({})", self.epsilon),
        }
    }
}

/// A trained VMM.
pub struct Vmm {
    pub(crate) pst: Pst,
    /// The frozen window trie: per-window (total, at-start) counts driving
    /// the escape probabilities of Eq. (6).
    pub(crate) windows: SuffixTrie,
    pub(crate) total_sessions: u64,
    pub(crate) total_occurrences: u64,
    pub(crate) n_queries: usize,
    pub(crate) config: VmmConfig,
    pub(crate) name: String,
}

/// `D_KL(P ‖ Q)` in base 10 by a merged walk over two id-sorted count
/// slices. `P` is the parent's continuation distribution; queries the child
/// never observed are floored at `q_floor`.
fn kl_counts_base10(
    parent: (&[QueryId], &[u64]),
    parent_total: u64,
    child: (&[QueryId], &[u64]),
    child_total: u64,
    q_floor: f64,
) -> f64 {
    let (pk, pc) = parent;
    let (ck, cc) = child;
    let pt = parent_total as f64;
    let ct = child_total as f64;
    let mut d = 0.0;
    let mut j = 0usize;
    for (i, &q) in pk.iter().enumerate() {
        while j < ck.len() && ck[j] < q {
            j += 1;
        }
        let child_count = if j < ck.len() && ck[j] == q { cc[j] } else { 0 };
        let p = pc[i] as f64 / pt;
        if p > 0.0 {
            let qv = (child_count as f64 / ct).max(q_floor);
            d += p * (p / qv).log10();
        }
    }
    d
}

impl Vmm {
    /// Train on weighted sessions.
    pub fn train(sessions: &WeightedSessions, config: VmmConfig) -> Self {
        let counts = WindowCounts::build_with(sessions, config.max_depth, config.parallel);
        Self::train_from_counts(counts, config)
    }

    /// Train from pre-built window counts. The counts **must** have been
    /// built with the same `max_depth` as `config` — mixtures use this to
    /// count the corpus once and train many components off the shared trie
    /// (the ε threshold only affects stage (b), not the counts).
    pub fn train_with_counts(counts: &WindowCounts, config: VmmConfig) -> Self {
        let pst = Self::grow_pst(counts, config);
        Self::assemble(pst, counts.trie().clone(), counts, config)
    }

    fn train_from_counts(counts: WindowCounts, config: VmmConfig) -> Self {
        let pst = Self::grow_pst(&counts, config);
        let (total_sessions, total_occurrences, n_queries) = (
            counts.total_sessions,
            counts.total_occurrences,
            counts.n_queries.max(1),
        );
        Vmm {
            pst,
            windows: counts.into_trie(),
            total_sessions,
            total_occurrences,
            n_queries,
            name: config.display_name(),
            config,
        }
    }

    fn assemble(pst: Pst, windows: SuffixTrie, counts: &WindowCounts, config: VmmConfig) -> Self {
        Vmm {
            pst,
            windows,
            total_sessions: counts.total_sessions,
            total_occurrences: counts.total_occurrences,
            n_queries: counts.n_queries.max(1),
            name: config.display_name(),
            config,
        }
    }

    /// Stages (a)–(c): candidate extraction, KL growth, smoothing.
    fn grow_pst(counts: &WindowCounts, config: VmmConfig) -> Pst {
        let n_queries = counts.n_queries.max(1);
        let trie = counts.trie();

        // Stages (a) + (b): decide the suffix-closed state set, walking the
        // candidate nodes in (length, sequence) order — the trie's canonical
        // id order — so parents are decided before children.
        let mut states: FxHashSet<QuerySeq> = FxHashSet::default();
        let mut path: Vec<QueryId> = Vec::new();
        for node in counts.candidate_nodes(config.min_support) {
            if trie.depth(node) == 1 {
                states.insert(Box::from([trie.key(node)]));
                continue;
            }
            trie.path(node, &mut path);
            if states.contains(path.as_slice()) {
                continue; // already pulled in as a suffix of a deeper state
            }
            let parent = trie
                .find(&path[1..])
                .expect("suffix of an observed window is observed");
            let parent_total = trie.cont_total(parent);
            let child_total = trie.cont_total(node);
            if parent_total == 0 || child_total == 0 {
                continue;
            }
            // Floor for parent-supported queries the child never observed:
            // one pseudo-count relative to the child's evidence. A global
            // 1/|Q| floor would blow the divergence up for every
            // low-evidence candidate (log10 |Q| per missing query), making ε
            // inoperative; the paper's toy corpus has full support at every
            // node, so this choice leaves its pinned numbers untouched.
            let q_floor = 1.0 / (child_total as f64 + 1.0);
            let d = kl_counts_base10(
                trie.continuations(parent),
                parent_total,
                trie.continuations(node),
                child_total,
                q_floor,
            );
            if d > config.epsilon {
                // Add the candidate and its whole suffix chain.
                let mut suffix: &[QueryId] = &path;
                while !suffix.is_empty() {
                    states.insert(suffix.into());
                    suffix = &suffix[1..];
                }
            }
        }

        // Stage (c): materialize the tree with smoothed distributions.
        let mut ordered: Vec<QuerySeq> = states.into_iter().collect();
        ordered.sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        let (root_keys, root_counts) = counts.root_continuations();
        let mut pst = Pst::new(NodeDist::from_sorted_slices(
            root_keys,
            root_counts,
            n_queries,
        ));
        for s in ordered {
            let node = trie.find(&s).expect("state is an observed window");
            let (keys, cnts) = trie.continuations(node);
            let dist = NodeDist::from_sorted_slices(keys, cnts, n_queries);
            pst.insert(s, dist);
        }
        pst
    }

    /// Number of PST nodes including the root (Table VII metric).
    pub fn node_count(&self) -> usize {
        self.pst.len()
    }

    /// The underlying tree.
    pub fn pst(&self) -> &Pst {
        &self.pst
    }

    /// The frozen window trie (escape table).
    pub fn window_trie(&self) -> &SuffixTrie {
        &self.windows
    }

    /// Training configuration.
    pub fn config(&self) -> &VmmConfig {
        &self.config
    }

    /// |Q| seen at training time.
    pub fn n_queries(&self) -> usize {
        self.n_queries
    }

    /// Longest suffix of `context` that is a (non-root) state:
    /// `(node index, matched length)`.
    pub fn match_state(&self, context: &[QueryId]) -> Option<(u32, usize)> {
        let (idx, matched) = self.pst.longest_suffix(context);
        (matched > 0).then_some((idx, matched))
    }

    /// Escape probability of Eq. (6) for context `s` (see
    /// [`WindowCounts::escape_prob`] for the derivation).
    pub fn escape_prob(&self, s: &[QueryId]) -> f64 {
        escape_prob_in(
            &self.windows,
            self.total_sessions,
            self.total_occurrences,
            s,
        )
    }

    /// `P(q | context)` by longest-suffix matching **without** escape — the
    /// single-VMM convention (renormalization cancels escape, §IV-C.2(b)).
    /// Falls back to the root prior when nothing matches.
    pub fn cond_prob(&self, context: &[QueryId], q: QueryId) -> f64 {
        let (idx, _) = self.pst.longest_suffix(context);
        self.pst.node(idx).dist.prob(q)
    }

    /// `P̂(q | context)` with the context-escape recursion of Eq. (5):
    /// unmatched contexts pay the escape penalty while trimming their oldest
    /// query, which is what lets the MVMM discount partially-matching
    /// components.
    pub fn cond_prob_escaped(&self, context: &[QueryId], q: QueryId) -> f64 {
        let mut s = context;
        let mut factor = 1.0;
        loop {
            if s.is_empty() {
                return factor * self.pst.root().dist.prob(q);
            }
            if let Some(idx) = self.pst.find(s) {
                return factor * self.pst.node(idx).dist.prob(q);
            }
            factor *= self.escape_prob(s);
            s = &s[1..];
        }
    }

    /// `log10 P̂_D(sequence)` with escape (Eq. 3), used by the MVMM fit.
    pub fn sequence_log10_prob_escaped(&self, seq: &[QueryId]) -> f64 {
        let mut lp = 0.0;
        for i in 1..seq.len() {
            lp += self
                .cond_prob_escaped(&seq[..i], seq[i])
                .max(1e-300)
                .log10();
        }
        lp
    }

    /// Top-k into a caller-owned buffer (cleared first). With a reused
    /// buffer the whole serve path — suffix match, distribution lookup,
    /// top-k — performs **zero heap allocations**.
    pub fn recommend_into(&self, context: &[QueryId], k: usize, out: &mut Vec<Scored>) {
        out.clear();
        let Some((mut idx, _)) = self.match_state(context) else {
            return;
        };
        // Defensive: walk toward the root if a state lacks evidence (cannot
        // happen with the growth rule, but keeps the API total).
        loop {
            let node = self.pst.node(idx);
            if !node.dist.is_empty() {
                node.dist.top_k_into(k, out);
                return;
            }
            match node.parent {
                Some(p) if p != 0 => idx = p,
                _ => return,
            }
        }
    }
}

impl Recommender for Vmm {
    fn name(&self) -> &str {
        &self.name
    }

    /// Top-`k` by longest-suffix state matching.
    ///
    /// # Examples
    ///
    /// ```
    /// use sqp_core::{Recommender, Vmm, VmmConfig};
    /// use sqp_core::toy::toy_corpus;
    /// use sqp_common::{seq, QueryId};
    ///
    /// let vmm = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.1));
    /// // §IV-B.2: after [q1, q0] the state q1q0 predicts q1 (P = 0.7).
    /// let top = vmm.recommend(&seq(&[1, 0]), 1);
    /// assert_eq!(top[0].query, QueryId(1));
    /// assert!((top[0].score - 0.7).abs() < 1e-12);
    /// ```
    fn recommend(&self, context: &[QueryId], k: usize) -> Vec<Scored> {
        let mut out = Vec::new();
        self.recommend_into(context, k, &mut out);
        out
    }

    fn recommend_into(&self, context: &[QueryId], k: usize, out: &mut Vec<Scored>) {
        Vmm::recommend_into(self, context, k, out);
    }

    fn covers(&self, context: &[QueryId]) -> bool {
        self.match_state(context).is_some()
    }

    fn memory_bytes(&self) -> usize {
        self.pst.heap_bytes() + self.windows.heap_bytes()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl SequenceScorer for Vmm {
    fn sequence_log10_prob(&self, seq: &[QueryId]) -> f64 {
        let mut lp = 0.0;
        for i in 1..seq.len() {
            lp += self.cond_prob(&seq[..i], seq[i]).max(1e-300).log10();
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{toy_corpus, toy_test_sequence, TOY_EPSILON, TOY_TEST_SEQUENCE_PROB};
    use sqp_common::seq;

    fn toy_vmm() -> Vmm {
        Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(TOY_EPSILON))
    }

    #[test]
    fn figure3_state_set() {
        let m = toy_vmm();
        // Paper: S = {q1q0, q0, q1} (+ root e) with ε = 0.1.
        assert_eq!(m.node_count(), 4);
        assert!(m.pst().contains(&seq(&[0])));
        assert!(m.pst().contains(&seq(&[1])));
        assert!(m.pst().contains(&seq(&[1, 0])));
        assert!(!m.pst().contains(&seq(&[0, 1]))); // D_KL = 0.0837 < 0.1
    }

    #[test]
    fn figure3_node_probabilities() {
        let m = toy_vmm();
        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        assert!(close(m.cond_prob(&seq(&[0]), QueryId(0)), 0.9));
        assert!(close(m.cond_prob(&seq(&[0]), QueryId(1)), 0.1));
        assert!(close(m.cond_prob(&seq(&[1]), QueryId(0)), 0.8));
        assert!(close(m.cond_prob(&seq(&[1]), QueryId(1)), 0.2));
        assert!(close(m.cond_prob(&seq(&[1, 0]), QueryId(0)), 0.3));
        assert!(close(m.cond_prob(&seq(&[1, 0]), QueryId(1)), 0.7));
        // Root prior: 187/218, 31/218.
        assert!(close(m.cond_prob(&[], QueryId(0)), 187.0 / 218.0));
        assert!(close(m.cond_prob(&[], QueryId(1)), 31.0 / 218.0));
    }

    #[test]
    fn paper_test_sequence_probability() {
        // 1 × 0.1 × 0.8 × 0.7 × 0.2 × 0.8 from §IV-B.2.
        let m = toy_vmm();
        let lp = m.sequence_log10_prob(&toy_test_sequence());
        assert!(
            (lp - TOY_TEST_SEQUENCE_PROB.log10()).abs() < 1e-10,
            "lp = {lp}, expected {}",
            TOY_TEST_SEQUENCE_PROB.log10()
        );
    }

    #[test]
    fn paper_recommendation_examples() {
        // §IV-B.2: after q0 recommend q0; after [q1,q0] recommend q1.
        let m = toy_vmm();
        assert_eq!(m.recommend(&seq(&[0]), 1)[0].query, QueryId(0));
        assert_eq!(m.recommend(&seq(&[1, 0]), 1)[0].query, QueryId(1));
    }

    #[test]
    fn epsilon_extremes_match_figure4() {
        // ε = +∞: Adjacency-like 2-gram (only length-1 states).
        let wide = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(f64::INFINITY));
        assert_eq!(wide.node_count(), 3); // root + q0 + q1
                                          // ε = 0: infinitely bounded VMM — every candidate becomes a state.
        let full = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.0));
        assert_eq!(full.node_count(), 5); // root + q0 + q1 + q1q0 + q0q1
        assert!(full.pst().contains(&seq(&[0, 1])));
    }

    #[test]
    fn intermediate_epsilon_rejects_q1q0() {
        // 0.3449 < 0.5 ⇒ even q1q0 is rejected.
        let m = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.5));
        assert_eq!(m.node_count(), 3);
        assert!(!m.pst().contains(&seq(&[1, 0])));
    }

    #[test]
    fn depth_bound_caps_states() {
        let m = Vmm::train(&toy_corpus(), VmmConfig::bounded(1, 0.0));
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.config().max_depth, Some(1));
        assert_eq!(m.name(), "1-bounded VMM (0)");
    }

    #[test]
    fn min_support_prunes_candidates() {
        // [0,1] has continuation support 2; a threshold of 5 removes it even
        // at ε = 0.
        let m = Vmm::train(
            &toy_corpus(),
            VmmConfig {
                epsilon: 0.0,
                min_support: 5,
                ..VmmConfig::default()
            },
        );
        assert!(!m.pst().contains(&seq(&[0, 1])));
        assert!(m.pst().contains(&seq(&[1, 0])));
    }

    #[test]
    fn paper_escape_example_q1q1() {
        // §IV-C.1(b): user submits q1q1; the state used is q1. The escape
        // probability is ‖[e,q1]‖ / ‖q1‖ = 18/31.
        let m = toy_vmm();
        assert!(!m.pst().contains(&seq(&[1, 1])));
        let esc = m.escape_prob(&seq(&[1, 1]));
        assert!((esc - 18.0 / 31.0).abs() < 1e-12, "esc = {esc}");
        let p = m.cond_prob_escaped(&seq(&[1, 1]), QueryId(0));
        assert!((p - (18.0 / 31.0) * 0.8).abs() < 1e-12);
        // Without escape the same context just uses state q1.
        assert!((m.cond_prob(&seq(&[1, 1]), QueryId(0)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn escaped_prob_equals_plain_on_exact_states() {
        let m = toy_vmm();
        for ctx in [seq(&[0]), seq(&[1]), seq(&[1, 0])] {
            for q in [QueryId(0), QueryId(1)] {
                assert!((m.cond_prob(&ctx, q) - m.cond_prob_escaped(&ctx, q)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn unknown_context_is_uncovered() {
        let m = toy_vmm();
        assert!(m.recommend(&seq(&[42]), 5).is_empty());
        assert!(!m.covers(&seq(&[42])));
        assert!(m.recommend(&[], 5).is_empty());
        // Context disparity is fine as long as the last query is known.
        assert!(m.covers(&seq(&[42, 0])));
    }

    #[test]
    fn coverage_matches_adjacency_structurally() {
        // Fig 10: VMM coverage == Adjacency coverage.
        let corpus = toy_corpus();
        let vmm = Vmm::train(&corpus, VmmConfig::with_epsilon(0.05));
        let adj = crate::adjacency::Adjacency::train(&corpus);
        for q in 0..4u32 {
            for q2 in 0..4u32 {
                let ctx = seq(&[q, q2]);
                assert_eq!(
                    vmm.covers(&ctx),
                    adj.covers(&ctx),
                    "coverage mismatch on {ctx:?}"
                );
            }
        }
    }

    #[test]
    fn conditional_distributions_sum_to_one() {
        let m = toy_vmm();
        for ctx in [&[][..], &seq(&[0]), &seq(&[1]), &seq(&[1, 0])] {
            let total: f64 = (0..2).map(|q| m.cond_prob(ctx, QueryId(q))).sum();
            assert!((total - 1.0).abs() < 1e-9, "ctx {ctx:?} sums to {total}");
        }
    }

    #[test]
    fn deterministic_training() {
        let a = toy_vmm();
        let b = toy_vmm();
        assert_eq!(a.node_count(), b.node_count());
        let ra = a.recommend(&seq(&[1, 0]), 5);
        let rb = b.recommend(&seq(&[1, 0]), 5);
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.query, y.query);
            assert_eq!(x.score, y.score);
        }
    }

    #[test]
    fn parallel_training_equals_sequential() {
        // Large enough corpus to cross the parallel threshold.
        let mut sessions: Vec<(QuerySeq, u64)> = Vec::new();
        for i in 0..4_000u32 {
            let a = i % 11;
            let b = (i * 5 + 2) % 11;
            let c = (i * 3 + 7) % 11;
            sessions.push((seq(&[a, b, c]), 1 + u64::from(i % 3)));
        }
        let serial = Vmm::train(&sessions, VmmConfig::with_epsilon(0.02));
        let parallel = Vmm::train(&sessions, VmmConfig::with_epsilon(0.02).parallel(true));
        assert_eq!(serial.node_count(), parallel.node_count());
        assert_eq!(serial.window_trie(), parallel.window_trie());
        for q in 0..11u32 {
            let a = serial.recommend(&seq(&[q]), 5);
            let b = parallel.recommend(&seq(&[q]), 5);
            assert_eq!(a.len(), b.len(), "context [{q}]");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.query, y.query);
                assert_eq!(x.score, y.score);
            }
        }
    }

    #[test]
    fn memory_accounting_positive_and_monotone() {
        let small = toy_vmm();
        let full = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.0));
        assert!(small.memory_bytes() > 0);
        assert!(full.memory_bytes() >= small.memory_bytes());
    }

    #[test]
    fn empty_training_data() {
        let m = Vmm::train(&[], VmmConfig::default());
        assert_eq!(m.node_count(), 1);
        assert!(m.recommend(&seq(&[0]), 5).is_empty());
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use sqp_common::rng::{Rng, StdRng};

    fn arbitrary_corpus(rng: &mut StdRng) -> Vec<(QuerySeq, u64)> {
        let n = rng.random_range(1usize..25);
        let mut map = std::collections::HashMap::new();
        for _ in 0..n {
            let len = rng.random_range(1usize..5);
            let s: QuerySeq = (0..len)
                .map(|_| QueryId(rng.random_range(0u32..6)))
                .collect();
            *map.entry(s).or_insert(0u64) += rng.random_range(1u64..20);
        }
        map.into_iter().collect()
    }

    #[test]
    fn state_set_is_suffix_closed() {
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(case);
            let corpus = arbitrary_corpus(&mut rng);
            let eps = rng.random::<f64>() * 0.2;
            let m = Vmm::train(&corpus, VmmConfig::with_epsilon(eps));
            for node in m.pst().iter() {
                let mut s: &[QueryId] = &node.context;
                while !s.is_empty() {
                    assert!(m.pst().contains(s), "case {case}: suffix {s:?} missing");
                    s = &s[1..];
                }
            }
        }
    }

    #[test]
    fn escape_probs_in_unit_interval() {
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(100 + case);
            let corpus = arbitrary_corpus(&mut rng);
            let m = Vmm::train(&corpus, VmmConfig::default());
            for q1 in 0..7u32 {
                for q2 in 0..7u32 {
                    let e = m.escape_prob(&sqp_common::seq(&[q1, q2]));
                    assert!((0.0..=1.0).contains(&e), "case {case}: escape {e}");
                }
            }
        }
    }

    #[test]
    fn conditionals_sum_to_one() {
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(200 + case);
            let corpus = arbitrary_corpus(&mut rng);
            let m = Vmm::train(&corpus, VmmConfig::with_epsilon(0.01));
            // The smoothed distribution sums to 1 over the query universe Q
            // actually observed in training (ids need not be dense).
            let universe: std::collections::BTreeSet<QueryId> =
                corpus.iter().flat_map(|(s, _)| s.iter().copied()).collect();
            assert_eq!(universe.len(), m.n_queries(), "case {case}");
            // Check a handful of contexts, including unmatched ones.
            for ctx in [&[][..], &sqp_common::seq(&[0]), &sqp_common::seq(&[1, 2])] {
                let total: f64 = universe.iter().map(|&q| m.cond_prob(ctx, q)).sum();
                assert!(
                    (total - 1.0).abs() < 1e-6,
                    "case {case}: ctx {ctx:?} -> {total}"
                );
            }
        }
    }

    #[test]
    fn recommendations_sorted_and_bounded() {
        for case in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(300 + case);
            let corpus = arbitrary_corpus(&mut rng);
            let k = rng.random_range(1usize..6);
            let m = Vmm::train(&corpus, VmmConfig::default());
            for q in 0..6u32 {
                let recs = m.recommend(&sqp_common::seq(&[q]), k);
                assert!(recs.len() <= k, "case {case}");
                for w in recs.windows(2) {
                    assert!(w[0].score >= w[1].score, "case {case}");
                }
            }
        }
    }
}
