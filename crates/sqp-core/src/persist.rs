//! Binary persistence for trained models — the model payloads of snapshots.
//!
//! §V-F.2 of the paper: *"The PST learnt by a trained VMM model must be
//! loaded into RAM for real-time online query prediction."* A deployment
//! therefore trains offline, serializes once, and loads in every serving
//! process. This module provides the **model payload** codecs that the
//! snapshot container format builds on:
//!
//! * [`model_to_bytes`] / [`model_from_bytes`] — serialize any supported
//!   [`Recommender`] behind a [`ModelKind`] tag. The VMM uses the
//!   fixed-size-row format below; the pair-wise and N-gram baselines
//!   serialize their raw count tables (reconstruction is exact because
//!   ranked lists and smoothing are deterministic functions of the counts).
//! * The legacy bare-VMM entry points [`Vmm::to_bytes`] /
//!   [`Vmm::from_bytes`] (**deprecated** — see below).
//!
//! The VMM payload is a small, versioned, length-prefixed binary layout;
//! reconstruction is exact because node distributions are rebuilt from the
//! stored raw counts through the same deterministic smoothing used at
//! training time, and the window trie is stored as its canonical
//! breadth-first `(parent, key, total, at-start)` rows (one fixed-size row
//! per node — no per-window key sequences, which shrinks the escape-table
//! section from O(Σ|w|) to O(#windows)).
//!
//! ## From bare models (v2) to snapshots (v3)
//!
//! A model blob alone cannot boot a serving process: its `QueryId`s are
//! indices into the [`Interner`](sqp_common::Interner) it was trained
//! against, which the v2 format does not carry. The `sqp-store` crate wraps
//! these payloads in the **snapshot v3** container — interner block, model
//! payload behind its [`ModelKind`] tag, lifecycle metadata, and a
//! whole-file checksum — specified byte-by-byte in the repository's
//! `FORMAT.md`. New code should persist through `sqp_store::save_snapshot`
//! / `sqp_store::load_snapshot`; the bare-Vmm entry points remain only for
//! id-level tooling that manages its own interner.

use crate::model::Recommender;
use crate::pst::{NodeDist, Pst};
use crate::vmm::{Vmm, VmmConfig};
use crate::{Adjacency, BackoffConfig, BackoffNgram, Cooccurrence, NGram};
use sqp_common::arena::SuffixTrie;
use sqp_common::bytes::{Bytes, BytesMut};
use sqp_common::{FxHashMap, QueryId, QuerySeq};

const MAGIC: &[u8; 4] = b"SQPV";
/// Version 2: trie-row escape table (version 1 stored owned window keys).
const VERSION: u32 = 2;

/// Which concrete model a serialized payload reconstructs — the model-kind
/// tag of the snapshot v3 `MODEL` section (see `FORMAT.md`).
///
/// The mixture models (MVMM, HMM) are deliberately absent: they are built
/// from per-component VMMs whose training is cheap to re-run, and their
/// Newton-fitted weights depend on corpus statistics the count tables do
/// not carry. [`model_to_bytes`] reports them as unsupported rather than
/// persisting an approximation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// [`Vmm`] — fixed-size-row PST + window-trie payload (format v2).
    Vmm,
    /// [`Adjacency`] — successor count table.
    Adjacency,
    /// [`Cooccurrence`] — co-occurrence count table.
    Cooccurrence,
    /// [`NGram`] — prefix-state count table.
    NGram,
    /// [`BackoffNgram`] — window-state count table + unigram floor + config.
    Backoff,
}

impl ModelKind {
    /// Every kind the persistence layer supports, in tag order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Vmm,
        ModelKind::Adjacency,
        ModelKind::Cooccurrence,
        ModelKind::NGram,
        ModelKind::Backoff,
    ];

    /// The on-disk tag (`u32`, little-endian) identifying this kind.
    pub fn code(self) -> u32 {
        match self {
            ModelKind::Vmm => 1,
            ModelKind::Adjacency => 2,
            ModelKind::Cooccurrence => 3,
            ModelKind::NGram => 4,
            ModelKind::Backoff => 5,
        }
    }

    /// Inverse of [`ModelKind::code`]; `None` for unknown tags.
    pub fn from_code(code: u32) -> Option<ModelKind> {
        ModelKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Stable human-readable label (used in errors and ops tooling).
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Vmm => "vmm",
            ModelKind::Adjacency => "adjacency",
            ModelKind::Cooccurrence => "cooccurrence",
            ModelKind::NGram => "ngram",
            ModelKind::Backoff => "backoff",
        }
    }

    /// Detect the kind of a model behind the trait object, `None` when the
    /// concrete type has no persistable form (MVMM, HMM, ad-hoc impls).
    pub fn of(model: &dyn Recommender) -> Option<ModelKind> {
        let any = model.as_any()?;
        if any.is::<Vmm>() {
            Some(ModelKind::Vmm)
        } else if any.is::<Adjacency>() {
            Some(ModelKind::Adjacency)
        } else if any.is::<Cooccurrence>() {
            Some(ModelKind::Cooccurrence)
        } else if any.is::<NGram>() {
            Some(ModelKind::NGram)
        } else if any.is::<BackoffNgram>() {
            Some(ModelKind::Backoff)
        } else {
            None
        }
    }
}

/// Serialize any supported [`Recommender`] into `(kind tag, payload)`.
///
/// Payload bytes are deterministic for identically-trained models (count
/// tables are written in sorted key order), so identical corpora produce
/// bit-identical snapshots. Returns an error naming the model when its
/// concrete type is not persistable — see [`ModelKind`] for why the
/// mixtures are excluded.
pub fn model_to_bytes(model: &dyn Recommender) -> Result<(ModelKind, Bytes), String> {
    // `ModelKind::of` is the single authoritative type list; a `Some` kind
    // guarantees `as_any` is `Some` and the matching downcast succeeds, so
    // the expects below are in-memory invariants, not input validation.
    let kind = ModelKind::of(model).ok_or_else(|| {
        format!(
            "model '{}' has no persistable form (supported kinds: vmm, \
             adjacency, cooccurrence, ngram, backoff)",
            model.name()
        )
    })?;
    let any = model.as_any().expect("ModelKind::of implies as_any");
    let payload = match kind {
        ModelKind::Vmm => vmm_to_bytes(any.downcast_ref().expect("kind tag matches type")),
        ModelKind::Adjacency => {
            lists_to_bytes(&any.downcast_ref::<Adjacency>().expect("kind tag").lists)
        }
        ModelKind::Cooccurrence => {
            lists_to_bytes(&any.downcast_ref::<Cooccurrence>().expect("kind tag").lists)
        }
        ModelKind::NGram => ngram_to_bytes(any.downcast_ref().expect("kind tag matches type")),
        ModelKind::Backoff => backoff_to_bytes(any.downcast_ref().expect("kind tag matches type")),
    };
    Ok((kind, payload))
}

/// Reconstruct a model serialized by [`model_to_bytes`] from its kind tag
/// and payload. The payload must be exactly one model — trailing bytes are
/// an error for the count-table kinds (the VMM payload is self-delimiting
/// via its own header).
pub fn model_from_bytes(kind: ModelKind, data: Bytes) -> Result<Box<dyn Recommender>, String> {
    match kind {
        ModelKind::Vmm => Ok(Box::new(vmm_from_bytes(data)?)),
        ModelKind::Adjacency => {
            let mut data = data;
            let lists = lists_from_bytes(&mut data)?;
            expect_consumed(&data)?;
            Ok(Box::new(Adjacency { lists }))
        }
        ModelKind::Cooccurrence => {
            let mut data = data;
            let lists = lists_from_bytes(&mut data)?;
            expect_consumed(&data)?;
            Ok(Box::new(Cooccurrence { lists }))
        }
        ModelKind::NGram => Ok(Box::new(ngram_from_bytes(data)?)),
        ModelKind::Backoff => Ok(Box::new(backoff_from_bytes(data)?)),
    }
}

/// Sum stored counts without trusting them: a crafted file (valid
/// checksum, hostile payload) must produce `Err`, not a debug-build
/// overflow panic or a silently wrapped total.
fn checked_total(counts: &[(QueryId, u64)], label: &str) -> Result<u64, String> {
    counts
        .iter()
        .try_fold(0u64, |acc, (_, c)| acc.checked_add(*c))
        .ok_or_else(|| format!("{label} count total overflows u64"))
}

fn expect_consumed(data: &Bytes) -> Result<(), String> {
    if data.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} trailing bytes after model payload",
            data.remaining()
        ))
    }
}

fn put_seq(buf: &mut BytesMut, seq: &[QueryId]) {
    buf.put_u32_le(seq.len() as u32);
    for q in seq {
        buf.put_u32_le(q.0);
    }
}

fn get_seq(data: &mut Bytes) -> Result<QuerySeq, String> {
    if data.remaining() < 4 {
        return Err("truncated sequence length".into());
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len * 4 {
        return Err("truncated sequence body".into());
    }
    Ok((0..len).map(|_| QueryId(data.get_u32_le())).collect())
}

/// Write a ranked `(query, count)` list, preserving its stored order (the
/// training-time descending-count, ascending-id order is part of model
/// behaviour and must survive the round trip).
fn put_counts(buf: &mut BytesMut, counts: &[(QueryId, u64)]) {
    buf.put_u32_le(counts.len() as u32);
    for &(q, c) in counts {
        buf.put_u32_le(q.0);
        buf.put_u64_le(c);
    }
}

fn get_counts(data: &mut Bytes) -> Result<Box<[(QueryId, u64)]>, String> {
    if data.remaining() < 4 {
        return Err("truncated count-list length".into());
    }
    let n = data.get_u32_le() as usize;
    if data.remaining() < n * 12 {
        return Err("truncated count-list body".into());
    }
    Ok((0..n)
        .map(|_| {
            let q = QueryId(data.get_u32_le());
            let c = data.get_u64_le();
            (q, c)
        })
        .collect())
}

/// The pair-wise count-table shape shared by Adjacency and Co-occurrence.
type RankedLists = FxHashMap<QueryId, Box<[(QueryId, u64)]>>;

/// The shared pair-wise count-table layout (Adjacency, Co-occurrence):
/// `n_lists: u32`, then per source query (ascending id for determinism)
/// `source: u32` followed by its ranked continuation list.
fn lists_to_bytes(lists: &RankedLists) -> Bytes {
    let entries: usize = lists.values().map(|l| l.len()).sum();
    let mut buf = BytesMut::with_capacity(8 + lists.len() * 8 + entries * 12);
    let mut keys: Vec<QueryId> = lists.keys().copied().collect();
    keys.sort_unstable();
    buf.put_u32_le(keys.len() as u32);
    for q in keys {
        buf.put_u32_le(q.0);
        put_counts(&mut buf, &lists[&q]);
    }
    buf.freeze()
}

fn lists_from_bytes(data: &mut Bytes) -> Result<RankedLists, String> {
    if data.remaining() < 4 {
        return Err("truncated list-table header".into());
    }
    let n = data.get_u32_le() as usize;
    if data.remaining() < n * 8 {
        return Err("truncated list table".into());
    }
    let mut lists = FxHashMap::default();
    lists.reserve(n);
    for _ in 0..n {
        if data.remaining() < 4 {
            return Err("truncated list source id".into());
        }
        let q = QueryId(data.get_u32_le());
        let counts = get_counts(data)?;
        if lists.insert(q, counts).is_some() {
            return Err(format!("duplicate list for query {}", q.0));
        }
    }
    Ok(lists)
}

/// N-gram payload: `n_states: u32`, then per state (sorted by context
/// length then lexicographic id order) the context sequence followed by its
/// ranked continuation list. `max_order` is recomputed on load.
fn ngram_to_bytes(model: &NGram) -> Bytes {
    let mut states: Vec<(&QuerySeq, &[(QueryId, u64)])> = model
        .states
        .iter()
        .map(|(ctx, counts)| (ctx, counts.as_ref()))
        .collect();
    states.sort_by_key(|(ctx, _)| (ctx.len(), (*ctx).clone()));
    let mut buf = BytesMut::with_capacity(8 + states.len() * 32);
    buf.put_u32_le(states.len() as u32);
    for (ctx, counts) in states {
        put_seq(&mut buf, ctx);
        put_counts(&mut buf, counts);
    }
    buf.freeze()
}

fn ngram_from_bytes(mut data: Bytes) -> Result<NGram, String> {
    if data.remaining() < 4 {
        return Err("truncated n-gram header".into());
    }
    let n = data.get_u32_le() as usize;
    if data.remaining() < n * 8 {
        return Err("truncated n-gram state table".into());
    }
    let mut states = FxHashMap::default();
    states.reserve(n);
    let mut max_order = 0;
    for _ in 0..n {
        let ctx = get_seq(&mut data)?;
        let counts = get_counts(&mut data)?;
        max_order = max_order.max(ctx.len());
        if states.insert(ctx, counts).is_some() {
            return Err("duplicate n-gram state".into());
        }
    }
    expect_consumed(&data)?;
    Ok(NGram { states, max_order })
}

/// Back-off payload: config (`max_order` with `u64::MAX` = unbounded,
/// `discount`, `min_support`), `n_queries`, the unigram floor, then the
/// window states sorted like the N-gram payload. Totals are recomputed.
fn backoff_to_bytes(model: &BackoffNgram) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + model.states.len() * 32);
    buf.put_u64_le(model.config.max_order.map(|d| d as u64).unwrap_or(u64::MAX));
    buf.put_f64_le(model.config.discount);
    buf.put_u64_le(model.config.min_support);
    buf.put_u64_le(model.n_queries as u64);
    put_counts(&mut buf, &model.unigrams);
    let mut states: Vec<&QuerySeq> = model.states.keys().collect();
    states.sort_by_key(|ctx| (ctx.len(), (*ctx).clone()));
    buf.put_u32_le(states.len() as u32);
    for ctx in states {
        put_seq(&mut buf, ctx);
        put_counts(&mut buf, &model.states[ctx].next);
    }
    buf.freeze()
}

fn backoff_from_bytes(mut data: Bytes) -> Result<BackoffNgram, String> {
    if data.remaining() < 32 {
        return Err("truncated back-off config".into());
    }
    let max_order_raw = data.get_u64_le();
    let discount = data.get_f64_le();
    let min_support = data.get_u64_le();
    let n_queries = data.get_u64_le() as usize;
    let config = BackoffConfig {
        max_order: (max_order_raw != u64::MAX).then_some(max_order_raw as usize),
        discount,
        min_support,
    };
    let unigrams = get_counts(&mut data)?;
    let unigram_total = checked_total(&unigrams, "back-off unigram")?;
    if data.remaining() < 4 {
        return Err("truncated back-off state count".into());
    }
    let n = data.get_u32_le() as usize;
    if data.remaining() < n * 8 {
        return Err("truncated back-off state table".into());
    }
    let mut states = FxHashMap::default();
    states.reserve(n);
    for _ in 0..n {
        let ctx = get_seq(&mut data)?;
        let next = get_counts(&mut data)?;
        let total = checked_total(&next, "back-off state")?;
        if states
            .insert(ctx, crate::backoff::State { next, total })
            .is_some()
        {
            return Err("duplicate back-off state".into());
        }
    }
    expect_consumed(&data)?;
    Ok(BackoffNgram {
        states,
        unigrams,
        unigram_total,
        config,
        n_queries,
    })
}

/// Serialize a trained VMM as a self-delimiting v2 payload (magic,
/// version, config, PST nodes, window-trie rows).
pub(crate) fn vmm_to_bytes(model: &Vmm) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + model.node_count() * 48);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);

    // Config + corpus constants.
    buf.put_f64_le(model.config.epsilon);
    buf.put_u64_le(model.config.max_depth.map(|d| d as u64).unwrap_or(u64::MAX));
    buf.put_u64_le(model.config.min_support);
    buf.put_u64_le(model.total_sessions);
    buf.put_u64_le(model.total_occurrences);
    buf.put_u64_le(model.n_queries as u64);

    // Nodes in (length, context) order so reinsertion finds parents.
    let mut nodes: Vec<_> = model.pst.iter().collect();
    nodes.sort_by_key(|n| (n.context.len(), n.context.clone()));
    buf.put_u64_le(nodes.len() as u64);
    for node in nodes {
        put_seq(&mut buf, &node.context);
        let raw = node.dist.raw_counts();
        buf.put_u32_le(raw.len() as u32);
        for &(q, c) in raw {
            buf.put_u32_le(q.0);
            buf.put_u64_le(c);
        }
    }

    // Window trie (escape table): canonical BFS rows, already
    // deterministic by construction.
    buf.put_u32_le(model.windows.window_len() as u32);
    buf.put_u64_le((model.windows.len() - 1) as u64);
    for (parent, key, total, at_start) in model.windows.parts() {
        buf.put_u32_le(parent);
        buf.put_u32_le(key);
        buf.put_u64_le(total);
        buf.put_u64_le(at_start);
    }
    buf.freeze()
}

/// Reconstruct a VMM serialized with [`vmm_to_bytes`].
pub(crate) fn vmm_from_bytes(mut data: Bytes) -> Result<Vmm, String> {
    if data.remaining() < 8 {
        return Err("truncated header".into());
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err("bad magic — not a serialized VMM".into());
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(format!("unsupported version {version}"));
    }
    if data.remaining() < 8 * 6 {
        return Err("truncated config".into());
    }
    let epsilon = data.get_f64_le();
    let max_depth_raw = data.get_u64_le();
    let min_support = data.get_u64_le();
    let total_sessions = data.get_u64_le();
    let total_occurrences = data.get_u64_le();
    let n_queries = data.get_u64_le() as usize;
    let config = VmmConfig {
        epsilon,
        max_depth: (max_depth_raw != u64::MAX).then_some(max_depth_raw as usize),
        min_support,
        ..VmmConfig::default()
    };

    if data.remaining() < 8 {
        return Err("truncated node count".into());
    }
    let n_nodes = data.get_u64_le() as usize;
    if n_nodes == 0 {
        return Err("serialized VMM has no root".into());
    }
    let mut pst: Option<Pst> = None;
    for i in 0..n_nodes {
        let context = get_seq(&mut data)?;
        if data.remaining() < 4 {
            return Err("truncated node distribution".into());
        }
        let n_raw = data.get_u32_le() as usize;
        if data.remaining() < n_raw * 12 {
            return Err("truncated node counts".into());
        }
        let raw: Vec<(QueryId, u64)> = (0..n_raw)
            .map(|_| {
                let q = QueryId(data.get_u32_le());
                let c = data.get_u64_le();
                (q, c)
            })
            .collect();
        let dist = NodeDist::from_counts(raw, n_queries);
        if i == 0 {
            if !context.is_empty() {
                return Err("first node must be the root".into());
            }
            pst = Some(Pst::new(dist));
        } else {
            let tree = pst.as_mut().ok_or("root missing")?;
            if context.is_empty() {
                return Err("duplicate root".into());
            }
            tree.insert(context, dist);
        }
    }
    let pst = pst.ok_or("root missing")?;

    if data.remaining() < 12 {
        return Err("truncated trie header".into());
    }
    let window_len = data.get_u32_le();
    let n_rows = data.get_u64_le() as usize;
    // checked: a corrupt count must produce Err, not an overflow panic
    // or a capacity-overflow abort in the collect below.
    let rows_bytes = n_rows.checked_mul(24).ok_or("trie row count overflows")?;
    if data.remaining() < rows_bytes {
        return Err("truncated trie rows".into());
    }
    let rows: Vec<(u32, u32, u64, u64)> = (0..n_rows)
        .map(|_| {
            let parent = data.get_u32_le();
            let key = data.get_u32_le();
            let total = data.get_u64_le();
            let at_start = data.get_u64_le();
            (parent, key, total, at_start)
        })
        .collect();
    let windows = SuffixTrie::from_parts(window_len, &rows)?;

    Ok(Vmm {
        pst,
        windows,
        total_sessions,
        total_occurrences,
        n_queries,
        name: config.display_name(),
        config,
    })
}

impl Vmm {
    /// Serialize the trained model as a bare v2 payload.
    #[deprecated(
        since = "0.1.0",
        note = "a bare-VMM blob cannot boot a serving process (no interner); \
                persist full snapshots via sqp_store::save_snapshot (format v3, \
                see FORMAT.md) or sqp_core::persist::model_to_bytes"
    )]
    pub fn to_bytes(&self) -> Bytes {
        vmm_to_bytes(self)
    }

    /// Reconstruct a model serialized with [`Vmm::to_bytes`].
    #[deprecated(
        since = "0.1.0",
        note = "load full snapshots via sqp_store::load_snapshot (format v3, \
                see FORMAT.md) or sqp_core::persist::model_from_bytes"
    )]
    pub fn from_bytes(data: Bytes) -> Result<Vmm, String> {
        vmm_from_bytes(data)
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the v2 entry points stay covered until removed

    use super::*;
    use crate::model::{Recommender, SequenceScorer};
    use crate::toy::{toy_corpus, toy_test_sequence, TOY_EPSILON};
    use sqp_common::seq;

    fn trained() -> Vmm {
        Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(TOY_EPSILON))
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let original = trained();
        let blob = original.to_bytes();
        let restored = Vmm::from_bytes(blob).expect("roundtrip");

        assert_eq!(restored.node_count(), original.node_count());
        assert_eq!(restored.name(), original.name());
        assert_eq!(restored.n_queries(), original.n_queries());
        assert_eq!(restored.config(), original.config());
        assert_eq!(restored.window_trie(), original.window_trie());

        // Identical probabilities, escapes, recommendations, scores.
        for ctx in [
            &[][..],
            &seq(&[0]),
            &seq(&[1]),
            &seq(&[1, 0]),
            &seq(&[1, 1]),
        ] {
            for q in [QueryId(0), QueryId(1), QueryId(7)] {
                assert_eq!(original.cond_prob(ctx, q), restored.cond_prob(ctx, q));
                assert_eq!(
                    original.cond_prob_escaped(ctx, q),
                    restored.cond_prob_escaped(ctx, q)
                );
            }
            let a = original.recommend(ctx, 5);
            let b = restored.recommend(ctx, 5);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.query, y.query);
                assert_eq!(x.score, y.score);
            }
        }
        assert_eq!(
            original.sequence_log10_prob(&toy_test_sequence()),
            restored.sequence_log10_prob(&toy_test_sequence())
        );
        assert_eq!(original.memory_bytes(), restored.memory_bytes());
    }

    #[test]
    fn roundtrip_on_simulated_corpus() {
        let logs = sqp_logsim::generate(&sqp_logsim::SimConfig::small(3_000, 500, 21));
        let p = sqp_sessions::process(&logs, &sqp_sessions::PipelineConfig::default());
        let original = Vmm::train(&p.train.aggregated.sessions, VmmConfig::bounded(3, 0.02));
        let restored = Vmm::from_bytes(original.to_bytes()).unwrap();
        assert_eq!(restored.node_count(), original.node_count());
        for e in p.ground_truth.entries.iter().take(200) {
            let a = original.recommend(&e.context, 5);
            let b = restored.recommend(&e.context, 5);
            assert_eq!(
                a.iter().map(|r| r.query).collect::<Vec<_>>(),
                b.iter().map(|r| r.query).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let m = trained();
        assert_eq!(m.to_bytes(), m.to_bytes());
        // Two identically-trained models serialize identically.
        assert_eq!(trained().to_bytes(), m.to_bytes());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(Vmm::from_bytes(Bytes::from_static(b"")).is_err());
        assert!(Vmm::from_bytes(Bytes::from_static(b"NOPE0000")).is_err());
        let blob = trained().to_bytes();
        for cut in [3, 8, 20, blob.len() / 2, blob.len() - 1] {
            assert!(
                Vmm::from_bytes(blob.slice(0..cut)).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let mut raw = trained().to_bytes().to_vec();
        raw[4] = 99; // bump the version field
        assert!(Vmm::from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn unbounded_and_bounded_configs_roundtrip() {
        for cfg in [
            VmmConfig::with_epsilon(0.0),
            VmmConfig::bounded(2, 0.1),
            VmmConfig {
                epsilon: 0.3,
                max_depth: Some(1),
                min_support: 4,
                ..VmmConfig::default()
            },
        ] {
            let m = Vmm::train(&toy_corpus(), cfg);
            let r = Vmm::from_bytes(m.to_bytes()).unwrap();
            assert_eq!(r.config(), &cfg);
            assert_eq!(r.node_count(), m.node_count());
        }
    }

    // ---- generalized (tagged) model persistence ----

    fn sim_sessions() -> Vec<(QuerySeq, u64)> {
        let logs = sqp_logsim::generate(&sqp_logsim::SimConfig::small(1_500, 300, 9));
        let p = sqp_sessions::process(&logs, &sqp_sessions::PipelineConfig::default());
        p.train.aggregated.sessions.clone()
    }

    fn trained_kind(kind: ModelKind, sessions: &[(QuerySeq, u64)]) -> Box<dyn Recommender> {
        match kind {
            ModelKind::Vmm => Box::new(Vmm::train(sessions, VmmConfig::bounded(3, 0.05))),
            ModelKind::Adjacency => Box::new(Adjacency::train(sessions)),
            ModelKind::Cooccurrence => Box::new(Cooccurrence::train(sessions)),
            ModelKind::NGram => Box::new(NGram::train(sessions)),
            ModelKind::Backoff => Box::new(BackoffNgram::train(sessions, BackoffConfig::default())),
        }
    }

    #[test]
    fn every_kind_roundtrips_bit_identically() {
        let sessions = sim_sessions();
        let contexts: Vec<QuerySeq> = {
            let mut out: Vec<QuerySeq> = Vec::new();
            for (s, _) in sessions.iter().take(100) {
                for i in 1..s.len() {
                    out.push(s[..i].into());
                }
            }
            out.push(seq(&[]));
            out.push(seq(&[9_999_999]));
            out
        };
        for kind in ModelKind::ALL {
            let original = trained_kind(kind, &sessions);
            let (tagged, blob) = model_to_bytes(original.as_ref()).unwrap();
            assert_eq!(tagged, kind);
            let restored = model_from_bytes(kind, blob).unwrap();
            assert_eq!(restored.name(), original.name(), "{kind:?}");
            assert_eq!(restored.memory_bytes(), original.memory_bytes(), "{kind:?}");
            for ctx in &contexts {
                let a = original.recommend(ctx, 5);
                let b = restored.recommend(ctx, 5);
                assert_eq!(a.len(), b.len(), "{kind:?} ctx {ctx:?}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!((x.query, x.score), (y.query, y.score), "{kind:?}");
                }
                assert_eq!(original.covers(ctx), restored.covers(ctx), "{kind:?}");
            }
        }
    }

    #[test]
    fn tagged_serialization_is_deterministic() {
        let sessions = sim_sessions();
        for kind in ModelKind::ALL {
            let a = model_to_bytes(trained_kind(kind, &sessions).as_ref()).unwrap();
            let b = model_to_bytes(trained_kind(kind, &sessions).as_ref()).unwrap();
            assert_eq!(a.1.as_slice(), b.1.as_slice(), "{kind:?} not deterministic");
        }
    }

    #[test]
    fn kind_codes_roundtrip_and_detect() {
        let sessions = sim_sessions();
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::from_code(kind.code()), Some(kind));
            let model = trained_kind(kind, &sessions);
            assert_eq!(ModelKind::of(model.as_ref()), Some(kind));
        }
        assert_eq!(ModelKind::from_code(0), None);
        assert_eq!(ModelKind::from_code(99), None);
    }

    #[test]
    fn mixtures_are_reported_unsupported() {
        let sessions = toy_corpus();
        let mvmm = crate::Mvmm::train(&sessions, &crate::MvmmConfig::small());
        assert_eq!(ModelKind::of(&mvmm), None);
        let err = model_to_bytes(&mvmm).unwrap_err();
        assert!(err.contains("no persistable form"), "{err}");
    }

    #[test]
    fn crafted_overflowing_counts_are_rejected_not_panicked() {
        // A syntactically valid Backoff payload whose unigram counts sum
        // past u64::MAX — load must return Err (never a debug-build panic
        // or a wrapped total).
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u64_le(u64::MAX); // max_order: unbounded
        buf.put_f64_le(0.5); // discount
        buf.put_u64_le(1); // min_support
        buf.put_u64_le(2); // n_queries
        buf.put_u32_le(2); // unigram entries
        for q in 0..2u32 {
            buf.put_u32_le(q);
            buf.put_u64_le(u64::MAX);
        }
        buf.put_u32_le(0); // no states
        let err = match model_from_bytes(ModelKind::Backoff, buf.freeze()) {
            Err(e) => e,
            Ok(_) => panic!("overflowing counts loaded successfully"),
        };
        assert!(err.contains("overflow"), "{err}");
    }

    #[test]
    fn tagged_payloads_reject_truncation() {
        let sessions = sim_sessions();
        for kind in ModelKind::ALL {
            let (_, blob) = model_to_bytes(trained_kind(kind, &sessions).as_ref()).unwrap();
            for cut in [0, 3, 7, blob.len() / 3, blob.len() / 2, blob.len() - 1] {
                assert!(
                    model_from_bytes(kind, blob.slice(0..cut)).is_err(),
                    "{kind:?} cut at {cut} should fail"
                );
            }
            // Trailing garbage after a complete payload must be rejected for
            // the length-delimited kinds (the VMM blob is self-delimiting).
            if kind != ModelKind::Vmm {
                let mut raw = blob.to_vec();
                raw.extend_from_slice(&[0u8; 3]);
                assert!(
                    model_from_bytes(kind, Bytes::from(raw)).is_err(),
                    "{kind:?} should reject trailing bytes"
                );
            }
        }
    }
}
