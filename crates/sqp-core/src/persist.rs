//! Binary persistence for trained VMMs.
//!
//! §V-F.2 of the paper: *"The PST learnt by a trained VMM model must be
//! loaded into RAM for real-time online query prediction."* A deployment
//! therefore needs to serialize a trained model once (nightly build) and
//! load it in each serving process. The format is a small, versioned,
//! length-prefixed binary layout; reconstruction is exact because node
//! distributions are rebuilt from the stored raw counts through the same
//! deterministic smoothing used at training time, and the window trie is
//! stored as its canonical breadth-first `(parent, key, total, at-start)`
//! rows (one fixed-size row per node — no per-window key sequences, which
//! shrinks the escape-table section from O(Σ|w|) to O(#windows)).

use crate::pst::{NodeDist, Pst};
use crate::vmm::{Vmm, VmmConfig};
use sqp_common::arena::SuffixTrie;
use sqp_common::bytes::{Bytes, BytesMut};
use sqp_common::{QueryId, QuerySeq};

const MAGIC: &[u8; 4] = b"SQPV";
/// Version 2: trie-row escape table (version 1 stored owned window keys).
const VERSION: u32 = 2;

fn put_seq(buf: &mut BytesMut, seq: &[QueryId]) {
    buf.put_u32_le(seq.len() as u32);
    for q in seq {
        buf.put_u32_le(q.0);
    }
}

fn get_seq(data: &mut Bytes) -> Result<QuerySeq, String> {
    if data.remaining() < 4 {
        return Err("truncated sequence length".into());
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len * 4 {
        return Err("truncated sequence body".into());
    }
    Ok((0..len).map(|_| QueryId(data.get_u32_le())).collect())
}

impl Vmm {
    /// Serialize the trained model.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.node_count() * 48);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);

        // Config + corpus constants.
        buf.put_f64_le(self.config.epsilon);
        buf.put_u64_le(self.config.max_depth.map(|d| d as u64).unwrap_or(u64::MAX));
        buf.put_u64_le(self.config.min_support);
        buf.put_u64_le(self.total_sessions);
        buf.put_u64_le(self.total_occurrences);
        buf.put_u64_le(self.n_queries as u64);

        // Nodes in (length, context) order so reinsertion finds parents.
        let mut nodes: Vec<_> = self.pst.iter().collect();
        nodes.sort_by_key(|n| (n.context.len(), n.context.clone()));
        buf.put_u64_le(nodes.len() as u64);
        for node in nodes {
            put_seq(&mut buf, &node.context);
            let raw = node.dist.raw_counts();
            buf.put_u32_le(raw.len() as u32);
            for &(q, c) in raw {
                buf.put_u32_le(q.0);
                buf.put_u64_le(c);
            }
        }

        // Window trie (escape table): canonical BFS rows, already
        // deterministic by construction.
        buf.put_u32_le(self.windows.window_len() as u32);
        buf.put_u64_le((self.windows.len() - 1) as u64);
        for (parent, key, total, at_start) in self.windows.parts() {
            buf.put_u32_le(parent);
            buf.put_u32_le(key);
            buf.put_u64_le(total);
            buf.put_u64_le(at_start);
        }
        buf.freeze()
    }

    /// Reconstruct a model serialized with [`Vmm::to_bytes`].
    pub fn from_bytes(mut data: Bytes) -> Result<Vmm, String> {
        if data.remaining() < 8 {
            return Err("truncated header".into());
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err("bad magic — not a serialized VMM".into());
        }
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(format!("unsupported version {version}"));
        }
        if data.remaining() < 8 * 6 {
            return Err("truncated config".into());
        }
        let epsilon = data.get_f64_le();
        let max_depth_raw = data.get_u64_le();
        let min_support = data.get_u64_le();
        let total_sessions = data.get_u64_le();
        let total_occurrences = data.get_u64_le();
        let n_queries = data.get_u64_le() as usize;
        let config = VmmConfig {
            epsilon,
            max_depth: (max_depth_raw != u64::MAX).then_some(max_depth_raw as usize),
            min_support,
            ..VmmConfig::default()
        };

        if data.remaining() < 8 {
            return Err("truncated node count".into());
        }
        let n_nodes = data.get_u64_le() as usize;
        if n_nodes == 0 {
            return Err("serialized VMM has no root".into());
        }
        let mut pst: Option<Pst> = None;
        for i in 0..n_nodes {
            let context = get_seq(&mut data)?;
            if data.remaining() < 4 {
                return Err("truncated node distribution".into());
            }
            let n_raw = data.get_u32_le() as usize;
            if data.remaining() < n_raw * 12 {
                return Err("truncated node counts".into());
            }
            let raw: Vec<(QueryId, u64)> = (0..n_raw)
                .map(|_| {
                    let q = QueryId(data.get_u32_le());
                    let c = data.get_u64_le();
                    (q, c)
                })
                .collect();
            let dist = NodeDist::from_counts(raw, n_queries);
            if i == 0 {
                if !context.is_empty() {
                    return Err("first node must be the root".into());
                }
                pst = Some(Pst::new(dist));
            } else {
                let tree = pst.as_mut().ok_or("root missing")?;
                if context.is_empty() {
                    return Err("duplicate root".into());
                }
                tree.insert(context, dist);
            }
        }
        let pst = pst.ok_or("root missing")?;

        if data.remaining() < 12 {
            return Err("truncated trie header".into());
        }
        let window_len = data.get_u32_le();
        let n_rows = data.get_u64_le() as usize;
        // checked: a corrupt count must produce Err, not an overflow panic
        // or a capacity-overflow abort in the collect below.
        let rows_bytes = n_rows.checked_mul(24).ok_or("trie row count overflows")?;
        if data.remaining() < rows_bytes {
            return Err("truncated trie rows".into());
        }
        let rows: Vec<(u32, u32, u64, u64)> = (0..n_rows)
            .map(|_| {
                let parent = data.get_u32_le();
                let key = data.get_u32_le();
                let total = data.get_u64_le();
                let at_start = data.get_u64_le();
                (parent, key, total, at_start)
            })
            .collect();
        let windows = SuffixTrie::from_parts(window_len, &rows)?;

        Ok(Vmm {
            pst,
            windows,
            total_sessions,
            total_occurrences,
            n_queries,
            name: config.display_name(),
            config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Recommender, SequenceScorer};
    use crate::toy::{toy_corpus, toy_test_sequence, TOY_EPSILON};
    use sqp_common::seq;

    fn trained() -> Vmm {
        Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(TOY_EPSILON))
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let original = trained();
        let blob = original.to_bytes();
        let restored = Vmm::from_bytes(blob).expect("roundtrip");

        assert_eq!(restored.node_count(), original.node_count());
        assert_eq!(restored.name(), original.name());
        assert_eq!(restored.n_queries(), original.n_queries());
        assert_eq!(restored.config(), original.config());
        assert_eq!(restored.window_trie(), original.window_trie());

        // Identical probabilities, escapes, recommendations, scores.
        for ctx in [
            &[][..],
            &seq(&[0]),
            &seq(&[1]),
            &seq(&[1, 0]),
            &seq(&[1, 1]),
        ] {
            for q in [QueryId(0), QueryId(1), QueryId(7)] {
                assert_eq!(original.cond_prob(ctx, q), restored.cond_prob(ctx, q));
                assert_eq!(
                    original.cond_prob_escaped(ctx, q),
                    restored.cond_prob_escaped(ctx, q)
                );
            }
            let a = original.recommend(ctx, 5);
            let b = restored.recommend(ctx, 5);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.query, y.query);
                assert_eq!(x.score, y.score);
            }
        }
        assert_eq!(
            original.sequence_log10_prob(&toy_test_sequence()),
            restored.sequence_log10_prob(&toy_test_sequence())
        );
        assert_eq!(original.memory_bytes(), restored.memory_bytes());
    }

    #[test]
    fn roundtrip_on_simulated_corpus() {
        let logs = sqp_logsim::generate(&sqp_logsim::SimConfig::small(3_000, 500, 21));
        let p = sqp_sessions::process(&logs, &sqp_sessions::PipelineConfig::default());
        let original = Vmm::train(&p.train.aggregated.sessions, VmmConfig::bounded(3, 0.02));
        let restored = Vmm::from_bytes(original.to_bytes()).unwrap();
        assert_eq!(restored.node_count(), original.node_count());
        for e in p.ground_truth.entries.iter().take(200) {
            let a = original.recommend(&e.context, 5);
            let b = restored.recommend(&e.context, 5);
            assert_eq!(
                a.iter().map(|r| r.query).collect::<Vec<_>>(),
                b.iter().map(|r| r.query).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let m = trained();
        assert_eq!(m.to_bytes(), m.to_bytes());
        // Two identically-trained models serialize identically.
        assert_eq!(trained().to_bytes(), m.to_bytes());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(Vmm::from_bytes(Bytes::from_static(b"")).is_err());
        assert!(Vmm::from_bytes(Bytes::from_static(b"NOPE0000")).is_err());
        let blob = trained().to_bytes();
        for cut in [3, 8, 20, blob.len() / 2, blob.len() - 1] {
            assert!(
                Vmm::from_bytes(blob.slice(0..cut)).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let mut raw = trained().to_bytes().to_vec();
        raw[4] = 99; // bump the version field
        assert!(Vmm::from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn unbounded_and_bounded_configs_roundtrip() {
        for cfg in [
            VmmConfig::with_epsilon(0.0),
            VmmConfig::bounded(2, 0.1),
            VmmConfig {
                epsilon: 0.3,
                max_depth: Some(1),
                min_support: 4,
                ..VmmConfig::default()
            },
        ] {
            let m = Vmm::train(&toy_corpus(), cfg);
            let r = Vmm::from_bytes(m.to_bytes()).unwrap();
            assert_eq!(r.config(), &cfg);
            assert_eq!(r.node_count(), m.node_count());
        }
    }
}
