//! FORMAT.md conformance: build the exact toy snapshot the specification
//! walks through and locate every field using **only the offsets and sizes
//! stated in the document**. If the writer and FORMAT.md drift — a field
//! moves, a size changes, the checksum algorithm changes — this fails.

use sqp_common::{seq, Interner};
use sqp_serve::ModelSnapshot;
use sqp_store::{checksum_fnv1a, parse_section_table, snapshot_from_bytes, snapshot_to_bytes};
use sqp_store::{SnapshotMeta, FORMAT_VERSION};

/// The toy snapshot of FORMAT.md's worked example: interner
/// `{0: "rust", 1: "rust book"}`, Adjacency trained on `[0, 1] × 3`,
/// meta `{generation: 7, trained_sessions: 3, source_records: 6}`.
fn toy_snapshot_bytes() -> Vec<u8> {
    let mut interner = Interner::new();
    interner.intern("rust");
    interner.intern("rust book");
    let model = sqp_core::Adjacency::train(&[(seq(&[0, 1]), 3)]);
    let snapshot = ModelSnapshot::from_parts(interner, Box::new(model), 3);
    snapshot_to_bytes(
        &snapshot,
        &SnapshotMeta {
            generation: 7,
            trained_sessions: 3,
            source_records: 6,
        },
    )
    .unwrap()
}

fn u32_at(raw: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(raw[offset..offset + 4].try_into().unwrap())
}

fn u64_at(raw: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(raw[offset..offset + 8].try_into().unwrap())
}

#[test]
fn toy_snapshot_matches_the_documented_layout() {
    let raw = toy_snapshot_bytes();

    // FORMAT.md: "produce this 165-byte file".
    assert_eq!(raw.len(), 165);

    // Header (offsets 0, 4, 8).
    assert_eq!(&raw[0..4], b"SQPS");
    assert_eq!(u32_at(&raw, 4), FORMAT_VERSION);
    assert_eq!(u32_at(&raw, 8), 3, "section count");

    // Section table: entries of 20 bytes at offsets 12 / 32 / 52, with
    // the documented (id, offset, length) triples.
    for (entry_offset, id, offset, len) in [(12, 1, 72, 24), (32, 2, 96, 33), (52, 3, 129, 28)] {
        assert_eq!(u32_at(&raw, entry_offset), id, "section id");
        assert_eq!(u64_at(&raw, entry_offset + 4), offset, "section offset");
        assert_eq!(u64_at(&raw, entry_offset + 12), len, "section length");
    }

    // META at 72: generation 7, trained_sessions 3, source_records 6.
    assert_eq!(u64_at(&raw, 72), 7);
    assert_eq!(u64_at(&raw, 80), 3);
    assert_eq!(u64_at(&raw, 88), 6);

    // INTERNER at 96: 2 queries, 13 content bytes, "rust", "rust book".
    assert_eq!(u32_at(&raw, 96), 2);
    assert_eq!(u64_at(&raw, 100), 13);
    assert_eq!(u32_at(&raw, 108), 4);
    assert_eq!(&raw[112..116], b"rust");
    assert_eq!(u32_at(&raw, 116), 9);
    assert_eq!(&raw[120..129], b"rust book");

    // MODEL at 129: kind 2 (Adjacency), one list: 0 → [(1, count 3)].
    assert_eq!(u32_at(&raw, 129), 2, "model kind tag");
    assert_eq!(u32_at(&raw, 133), 1, "n_lists");
    assert_eq!(u32_at(&raw, 137), 0, "source query id");
    assert_eq!(u32_at(&raw, 141), 1, "count-list entries");
    assert_eq!(u32_at(&raw, 145), 1, "successor query id");
    assert_eq!(u64_at(&raw, 149), 3, "successor count");

    // Checksum at 157: the documented constant, which must equal FNV-1a 64
    // of everything before it.
    assert_eq!(u64_at(&raw, 157), 0x742259ba34021e11);
    assert_eq!(checksum_fnv1a(&raw[..157]), 0x742259ba34021e11);

    // The library's own table parser agrees with the documented offsets.
    let entries = parse_section_table(&raw).unwrap();
    assert_eq!(
        entries
            .iter()
            .map(|e| (e.id, e.offset, e.len))
            .collect::<Vec<_>>(),
        vec![(1, 72, 24), (2, 96, 33), (3, 129, 28)]
    );

    // And the file means what the spec says it means.
    let (snapshot, meta) = snapshot_from_bytes(&raw).unwrap();
    assert_eq!(meta.generation, 7);
    let top = snapshot.suggest(&["rust"], 1);
    assert_eq!(top[0].query, "rust book");
    assert_eq!(top[0].score, 3.0);
}

#[test]
fn toy_snapshot_is_byte_stable() {
    // The hexdump in FORMAT.md is only valid while serialization is
    // deterministic; re-generate twice and compare.
    assert_eq!(toy_snapshot_bytes(), toy_snapshot_bytes());
}
