//! The incremental retrain loop: log stream in, published snapshots out.
//!
//! Closes the paper's offline→online gap. Serving threads (or a log
//! tailer) [`ingest`](Retrainer::ingest) raw records as traffic arrives; a
//! background thread — spawned into a caller-owned
//! [`scope`](std::thread::scope) so it can borrow the engine and can never
//! outlive it — waits until enough new traffic has buffered, re-runs the
//! full `segment → aggregate → reduce → train` pipeline over a sliding
//! window of recent records
//! ([`SlidingCorpus`]), writes the new
//! generation to disk as a v3 snapshot, and publishes it through the
//! engine's `Swap` cell. Serving never pauses: requests in flight finish
//! on the old snapshot, later ones see the new one.
//!
//! ```text
//! traffic ─▶ ingest ─▶ pending ─┐            (engine keeps serving)
//!                               ▼
//!              [retrain thread] drain → sliding window → train
//!                               │
//!                  save_snapshot(dir/snapshot-NNNNNNNN.sqps)
//!                               │
//!                  engine.publish(Arc<ModelSnapshot>)  — atomic swap
//! ```

use crate::error::SnapshotError;
use crate::format::{save_snapshot, SnapshotMeta};
use sqp_common::fsio::{FsIo, RealFs};
use sqp_logsim::RawLogRecord;
use sqp_serve::{ModelSnapshot, ServeEngine, TrainingConfig};
use sqp_sessions::SlidingCorpus;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Parameters of the retrain loop.
#[derive(Clone, Debug)]
pub struct RetrainConfig {
    /// Pipeline + model parameters for each retrain.
    pub training: TrainingConfig,
    /// Retrain as soon as this many new records have buffered. Lower =
    /// fresher model, more training CPU; production deployments tune this
    /// to their retrain cadence.
    pub min_batch: usize,
    /// Sliding training window, in raw records — old traffic beyond this
    /// falls out of the next retrain.
    pub window_records: usize,
    /// Where snapshot generations are written (`snapshot-NNNNNNNN.sqps`).
    /// `None` publishes in-memory only (tests, single-process setups).
    pub snapshot_dir: Option<PathBuf>,
    /// How many snapshot generations to keep on disk (min 1); older files
    /// are deleted after each successful save.
    pub keep: usize,
    /// How long the loop sleeps between checks for new traffic or
    /// shutdown.
    pub poll: Duration,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        Self {
            training: TrainingConfig::default(),
            min_batch: 1_024,
            window_records: 1 << 20,
            snapshot_dir: None,
            keep: 3,
            poll: Duration::from_millis(5),
        }
    }
}

/// What one successful retrain produced.
#[derive(Clone, Debug)]
pub struct PublishOutcome {
    /// Metadata of the published snapshot (generation, corpus stats).
    pub meta: SnapshotMeta,
    /// Where the snapshot file was written, when a directory is configured
    /// and the save succeeded.
    pub path: Option<PathBuf>,
    /// The serving engine's generation counter after the publish.
    pub engine_generation: u64,
    /// Why the on-disk save (or rotation) failed, if it did. The in-memory
    /// publish has still happened — disk trouble degrades durability, not
    /// serving freshness.
    pub save_error: Option<String>,
}

/// Summary returned when the background loop exits.
#[derive(Clone, Debug, Default)]
pub struct RetrainReport {
    /// Snapshot generations published by this loop.
    pub published: u64,
    /// Raw records ingested over the loop's lifetime.
    pub records_ingested: u64,
    /// Snapshot files written to disk.
    pub snapshots_written: u64,
    /// Save/rotation errors encountered. The loop publishes in-memory
    /// through save failures — a full disk must not stop publication —
    /// so entries here mean degraded durability, not a stale model.
    pub errors: Vec<String>,
}

struct Queue {
    pending: Vec<RawLogRecord>,
    corpus: SlidingCorpus,
}

/// The incremental retrainer: a thread-safe ingest buffer plus the retrain
/// loop that turns buffered traffic into published snapshot generations.
///
/// All methods take `&self`; the intended shape is one `Retrainer` shared
/// between serving threads (ingest side) and one background loop (retrain
/// side) inside a [`std::thread::scope`].
///
/// # Examples
///
/// Drive one retrain step synchronously (the background loop calls exactly
/// this in a wait/retrain cycle):
///
/// ```
/// use std::sync::Arc;
/// use sqp_logsim::RawLogRecord;
/// use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
/// use sqp_store::{RetrainConfig, Retrainer};
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let seed: Vec<_> = (0..5)
///     .flat_map(|u| [rec(u, 100, "maps"), rec(u, 150, "maps directions")])
///     .collect();
/// let training = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
/// let engine = ServeEngine::new(
///     Arc::new(ModelSnapshot::from_raw_logs(&seed, &training)),
///     EngineConfig::default(),
/// );
///
/// let retrainer = Retrainer::new(
///     RetrainConfig { training, ..RetrainConfig::default() },
///     seed,
/// );
/// // Fresh traffic arrives with a new refinement…
/// for u in 10..20 {
///     retrainer.ingest(rec(u, 100, "maps"));
///     retrainer.ingest(rec(u, 150, "maps satellite view"));
/// }
/// // …and one retrain step folds it into the serving model.
/// let outcome = retrainer.retrain_once(&engine).unwrap();
/// assert_eq!(outcome.meta.generation, 1);
/// assert_eq!(engine.generation(), 1);
/// let top = engine.suggest_context(&["maps"], 1);
/// assert_eq!(top[0].query, "maps satellite view"); // new corpus wins
/// ```
pub struct Retrainer {
    cfg: RetrainConfig,
    queue: Mutex<Queue>,
    arrived: Condvar,
    stop: AtomicBool,
    generations: AtomicU64,
    ingested: AtomicU64,
}

impl Retrainer {
    /// A retrainer whose first generation trains on `seed` (typically the
    /// records behind the currently-serving snapshot) plus whatever
    /// arrives before the first trigger.
    ///
    /// Generation numbering continues from the newest `snapshot-*.sqps`
    /// already in `snapshot_dir`, so a process restart never reuses a
    /// generation number — "lexicographic order is generation order"
    /// (FORMAT.md) holds across restarts and rotation never deletes a
    /// newer file in favour of a stale one.
    pub fn new(cfg: RetrainConfig, seed: Vec<RawLogRecord>) -> Self {
        let window = cfg.window_records.max(1);
        let start_generation = cfg
            .snapshot_dir
            .as_deref()
            .map(latest_generation_on_disk)
            .unwrap_or(0);
        Self {
            cfg,
            queue: Mutex::new(Queue {
                pending: Vec::new(),
                corpus: SlidingCorpus::with_seed(window, seed),
            }),
            arrived: Condvar::new(),
            stop: AtomicBool::new(false),
            generations: AtomicU64::new(start_generation),
            ingested: AtomicU64::new(0),
        }
    }

    /// The loop's configuration.
    pub fn config(&self) -> &RetrainConfig {
        &self.cfg
    }

    /// Lock the ingest queue, recovering from poisoning. The queue holds a
    /// pending `Vec` and the sliding corpus; every mutation under the lock
    /// (extend, drain, append) leaves both valid at each step, so a thread
    /// that panicked mid-critical-section (e.g. an injected chaos panic)
    /// cannot have torn the state — serving and retraining safely continue.
    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Buffer one raw record for the next retrain.
    pub fn ingest(&self, record: RawLogRecord) {
        self.ingest_batch(std::iter::once(record));
    }

    /// Buffer a batch of raw records, waking the loop if the trigger
    /// threshold is now met.
    pub fn ingest_batch<I: IntoIterator<Item = RawLogRecord>>(&self, records: I) {
        let mut queue = self.lock_queue();
        let before = queue.pending.len();
        queue.pending.extend(records);
        self.ingested
            .fetch_add((queue.pending.len() - before) as u64, Ordering::Relaxed);
        if queue.pending.len() >= self.cfg.min_batch {
            self.arrived.notify_all();
        }
    }

    /// Records buffered but not yet folded into a retrain.
    pub fn pending(&self) -> usize {
        self.lock_queue().pending.len()
    }

    /// The latest snapshot generation number. Starts at the newest
    /// generation found in `snapshot_dir` (0 when none), so after a
    /// restart this reflects on-disk history, not just this process's
    /// publishes; [`RetrainReport::published`] counts the current run.
    pub fn generations_published(&self) -> u64 {
        self.generations.load(Ordering::Acquire)
    }

    /// Total records ingested so far.
    pub fn records_ingested(&self) -> u64 {
        self.ingested.load(Ordering::Relaxed)
    }

    /// Ask the background loop to drain remaining traffic into one final
    /// retrain and exit. Safe to call from any thread, any number of
    /// times.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.arrived.notify_all();
    }

    /// True once [`shutdown`](Retrainer::shutdown) has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Run one retrain step now: drain buffered records into the sliding
    /// window, train, attempt to save `snapshot-NNNNNNNN.sqps`, and publish
    /// into `engine`. Returns `None` when the window is empty (nothing to
    /// train on). The background loop is this in a wait/step cycle; calling
    /// it directly gives single-threaded setups a synchronous retrain.
    ///
    /// A disk failure never blocks the in-memory publish: the freshly
    /// trained snapshot is swapped in regardless, and the save failure is
    /// reported in [`PublishOutcome::save_error`] (a full disk must not
    /// leave the engine serving an ever-staler model).
    pub fn retrain_once(&self, engine: &ServeEngine) -> Option<PublishOutcome> {
        let window = self.drain_window()?;
        let snapshot = ModelSnapshot::from_raw_logs(&window, &self.cfg.training);
        let generation = self.generations.load(Ordering::Acquire) + 1;
        let meta = SnapshotMeta::describe(&snapshot, generation, window.len() as u64);
        let (path, save_error) = match &self.cfg.snapshot_dir {
            Some(dir) => self.save_generation(dir, generation, &snapshot, &meta),
            None => (None, None),
        };
        let engine_generation = engine.publish(Arc::new(snapshot));
        self.generations.store(generation, Ordering::Release);
        Some(PublishOutcome {
            meta,
            path,
            engine_generation,
            save_error,
        })
    }

    /// Fold every buffered record into the sliding corpus and copy the
    /// current training window out, or `None` when the corpus is empty.
    /// Training then runs without holding the ingest lock — serving
    /// threads keep buffering mid-retrain. Drained records stay in the
    /// corpus, so a retrain that subsequently fails (panic, disk trouble)
    /// loses no traffic: the next attempt retrains on the same window.
    pub fn drain_window(&self) -> Option<Vec<RawLogRecord>> {
        let mut queue = self.lock_queue();
        let drained: Vec<RawLogRecord> = queue.pending.drain(..).collect();
        queue.corpus.append(drained);
        if queue.corpus.is_empty() {
            return None;
        }
        Some(queue.corpus.records().to_vec())
    }

    /// Claim the next snapshot generation number. Numbers are burned on
    /// attempt: a retrain that reserves a generation and then fails (save
    /// exhaustion, quarantine) never returns it, so a generation number
    /// on disk — good or quarantined — is globally unique and
    /// "lexicographic order is generation order" survives failed publishes.
    pub fn reserve_generation(&self) -> u64 {
        self.generations.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Block until at least `min_batch` records are buffered or shutdown
    /// is requested, whichever comes first (checked every `poll`). Returns
    /// true when the caller should run a final drain-and-exit step —
    /// shared by [`run`](Retrainer::run) and the supervised loop.
    ///
    /// A false return with an empty buffer never happens: the wait only
    /// ends below `min_batch` when shutting down.
    pub fn wait_for_work(&self) -> bool {
        let mut queue = self.lock_queue();
        while queue.pending.len() < self.cfg.min_batch && !self.is_shutting_down() {
            let (guard, _) = self
                .arrived
                .wait_timeout(queue, self.cfg.poll)
                // Poison recovery: see `lock_queue`.
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
        self.is_shutting_down()
    }

    /// Save one generation to disk and rotate, reporting failures instead
    /// of propagating them (the caller publishes either way). A rotation
    /// failure still returns the successfully written path.
    fn save_generation(
        &self,
        dir: &Path,
        generation: u64,
        snapshot: &ModelSnapshot,
        meta: &SnapshotMeta,
    ) -> (Option<PathBuf>, Option<String>) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return (None, Some(format!("create {}: {e}", dir.display())));
        }
        let path = dir.join(snapshot_file_name(generation));
        if let Err(e) = save_snapshot(&path, snapshot, meta) {
            return (None, Some(format!("save {}: {e}", path.display())));
        }
        match rotate_snapshots(dir, self.cfg.keep.max(1)) {
            Ok(_) => (Some(path), None),
            Err(e) => {
                let err = format!("rotate {}: {e}", dir.display());
                (Some(path), Some(err))
            }
        }
    }

    /// The blocking retrain loop: wait for `min_batch` buffered records
    /// (or shutdown), retrain, publish, repeat; on shutdown, drain any
    /// remaining traffic into one final generation. Runs until
    /// [`shutdown`](Retrainer::shutdown).
    pub fn run(&self, engine: &ServeEngine) -> RetrainReport {
        let mut report = RetrainReport::default();
        loop {
            let stopping = self.wait_for_work();
            if stopping && self.pending() == 0 {
                break;
            }
            if let Some(outcome) = self.retrain_once(engine) {
                report.published += 1;
                if outcome.path.is_some() {
                    report.snapshots_written += 1;
                }
                if let Some(err) = outcome.save_error {
                    report.errors.push(err);
                }
            }
            if stopping {
                break;
            }
        }
        report.records_ingested = self.records_ingested();
        report
    }

    /// Spawn [`run`](Retrainer::run) as a background thread inside a
    /// caller-owned scope. The scope guarantees the loop cannot outlive
    /// the engine or the retrainer it borrows.
    pub fn spawn<'scope, 'env>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        engine: &'env ServeEngine,
    ) -> std::thread::ScopedJoinHandle<'scope, RetrainReport> {
        scope.spawn(move || self.run(engine))
    }
}

/// Canonical on-disk name of a snapshot generation
/// (`snapshot-NNNNNNNN.sqps`, zero-padded so lexicographic order is
/// generation order).
pub fn snapshot_file_name(generation: u64) -> String {
    format!("snapshot-{generation:08}.sqps")
}

/// Parse a generation number out of a canonical snapshot file name —
/// strictly `snapshot-N.sqps` or its quarantined form
/// `snapshot-N.sqps.quarantine`. Returns the generation and whether the
/// file is quarantined; anything else (aliens, tmp files) is `None`.
pub fn parse_snapshot_name(name: &str) -> Option<(u64, bool)> {
    let (rest, quarantined) = match name.strip_suffix(".quarantine") {
        Some(rest) => (rest, true),
        None => (name, false),
    };
    let generation = rest
        .strip_prefix("snapshot-")?
        .strip_suffix(".sqps")?
        .parse::<u64>()
        .ok()?;
    Some((generation, quarantined))
}

/// The newest generation number among snapshot files in `dir` — counting
/// quarantined (`*.sqps.quarantine`) files, so a generation that failed
/// validation is never reissued to a different model (0 when the directory
/// is missing, unreadable, or holds none). Used to continue numbering
/// across process restarts.
pub fn latest_generation_on_disk(dir: &Path) -> u64 {
    latest_generation_on_disk_with(&RealFs, dir)
}

/// [`latest_generation_on_disk`] through an explicit
/// [`FsIo`] seam.
pub fn latest_generation_on_disk_with(io: &dyn FsIo, dir: &Path) -> u64 {
    let Ok(entries) = io.list(dir) else {
        return 0;
    };
    entries
        .iter()
        .filter_map(|path| parse_snapshot_name(path.file_name()?.to_str()?))
        .map(|(generation, _)| generation)
        .max()
        .unwrap_or(0)
}

/// What one rotation pass did (and declined to do).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RotationReport {
    /// Old snapshot files deleted.
    pub removed: usize,
    /// Directory entries skipped because they are not canonical
    /// `snapshot-N.sqps` files (alien files, tmp leftovers, quarantined
    /// snapshots). Rotation never touches what it does not own.
    pub skipped: usize,
    /// Per-file deletion failures. Rotation keeps going past them — one
    /// undeletable file must not wedge the whole pass — so entries here
    /// mean disk usage is higher than `keep` intends, not that rotation
    /// aborted.
    pub errors: Vec<String>,
}

/// Delete the oldest `snapshot-*.sqps` files in `dir` beyond `keep`.
/// Returns how many files were removed; per-file failures become one
/// summary [`SnapshotError::Io`]. Compatibility wrapper over
/// [`rotate_snapshots_with`].
pub fn rotate_snapshots(dir: &Path, keep: usize) -> Result<usize, SnapshotError> {
    let report = rotate_snapshots_with(&RealFs, dir, keep, None)?;
    if report.errors.is_empty() {
        Ok(report.removed)
    } else {
        Err(SnapshotError::Io(std::io::Error::other(
            report.errors.join("; "),
        )))
    }
}

/// Rotate snapshot generations in `dir` down to the newest `keep` (min 1),
/// through an explicit [`FsIo`] seam.
///
/// Robustness contract:
///
/// * only canonical `snapshot-N.sqps` names are candidates — alien files,
///   `.tmp` leftovers, and quarantined snapshots are skipped (and counted),
///   never deleted;
/// * candidates are ordered by parsed generation number, and the newest
///   `keep` are always retained — rotation can never delete the newest
///   good generation;
/// * `protect` (the supervisor's last validated snapshot) is never
///   deleted, whatever its age;
/// * a file that fails to delete is reported in
///   [`RotationReport::errors`] and the pass continues.
///
/// Errors only when the directory itself cannot be listed.
pub fn rotate_snapshots_with(
    io: &dyn FsIo,
    dir: &Path,
    keep: usize,
    protect: Option<&Path>,
) -> Result<RotationReport, SnapshotError> {
    let mut report = RotationReport::default();
    let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
    for path in io.list(dir)? {
        match path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_snapshot_name)
        {
            Some((generation, false)) => snaps.push((generation, path)),
            _ => report.skipped += 1,
        }
    }
    snaps.sort();
    let keep = keep.max(1);
    let excess = snaps.len().saturating_sub(keep);
    for (generation, path) in snaps.into_iter().take(excess) {
        if protect.is_some_and(|p| p == path) {
            report.skipped += 1;
            continue;
        }
        match io.remove_file(&path) {
            Ok(()) => report.removed += 1,
            Err(e) => report.errors.push(format!(
                "remove generation {generation} ({}): {e}",
                path.display()
            )),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_serve::{EngineConfig, ModelSpec};

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    /// Six two-query sessions `start → {prefix}::next`. `machine_base`
    /// keeps batches on distinct machines so the 30-minute rule does not
    /// merge traffic from different batches into one session.
    fn batch_records(prefix: &str, machine_base: u64) -> Vec<RawLogRecord> {
        (machine_base..machine_base + 6)
            .flat_map(|u| {
                [
                    rec(u, 100, "start"),
                    rec(u, 150, &format!("{prefix}::next")),
                ]
            })
            .collect()
    }

    fn seed_records(prefix: &str) -> Vec<RawLogRecord> {
        batch_records(prefix, 0)
    }

    fn training() -> TrainingConfig {
        TrainingConfig {
            model: ModelSpec::Adjacency,
            ..TrainingConfig::default()
        }
    }

    fn engine(prefix: &str) -> ServeEngine {
        ServeEngine::new(
            Arc::new(ModelSnapshot::from_raw_logs(
                &seed_records(prefix),
                &training(),
            )),
            EngineConfig::default(),
        )
    }

    #[test]
    fn retrain_once_publishes_and_rotates_files() {
        let dir = std::env::temp_dir().join(format!("sqp-retrain-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = engine("old");
        let retrainer = Retrainer::new(
            RetrainConfig {
                training: training(),
                snapshot_dir: Some(dir.clone()),
                keep: 2,
                ..RetrainConfig::default()
            },
            seed_records("old"),
        );
        for generation in 1..=4u64 {
            retrainer.ingest_batch(batch_records(&format!("g{generation}"), generation * 100));
            let outcome = retrainer.retrain_once(&e).unwrap();
            assert_eq!(outcome.save_error, None);
            assert_eq!(outcome.meta.generation, generation);
            assert_eq!(outcome.engine_generation, generation);
            assert!(outcome.path.as_ref().unwrap().exists());
        }
        let mut kept: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        kept.sort();
        assert_eq!(kept, ["snapshot-00000003.sqps", "snapshot-00000004.sqps"]);
        assert_eq!(retrainer.generations_published(), 4);
        // The sliding window kept the newest traffic: g4's refinement is
        // among the served suggestions.
        let suggestions = e.suggest_context(&["start"], 10);
        assert!(suggestions.iter().any(|s| s.query == "g4::next"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retrain_once_on_empty_window_is_a_noop() {
        let e = engine("old");
        let retrainer = Retrainer::new(RetrainConfig::default(), Vec::new());
        assert!(retrainer.retrain_once(&e).is_none());
        assert_eq!(e.generation(), 0);
    }

    #[test]
    fn sliding_window_forgets_old_traffic() {
        let e = engine("old");
        let retrainer = Retrainer::new(
            RetrainConfig {
                training: training(),
                // Window smaller than one seed corpus: only the newest
                // records survive.
                window_records: 12,
                ..RetrainConfig::default()
            },
            seed_records("old"),
        );
        retrainer.ingest_batch(batch_records("new", 100));
        retrainer.retrain_once(&e).unwrap();
        let suggestions = e.suggest_context(&["start"], 10);
        assert!(suggestions.iter().any(|s| s.query == "new::next"));
        assert!(
            !suggestions.iter().any(|s| s.query == "old::next"),
            "old traffic should have slid out of the window"
        );
    }

    #[test]
    fn generation_numbering_continues_across_restarts() {
        let dir = std::env::temp_dir().join(format!("sqp-retrain-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A previous run left generation 5 behind (content irrelevant for
        // numbering) plus an unrelated file that must be ignored.
        std::fs::write(dir.join("snapshot-00000005.sqps"), b"stale").unwrap();
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();

        let e = engine("old");
        let retrainer = Retrainer::new(
            RetrainConfig {
                training: training(),
                snapshot_dir: Some(dir.clone()),
                keep: 2,
                ..RetrainConfig::default()
            },
            seed_records("old"),
        );
        assert_eq!(retrainer.generations_published(), 5, "seeded from disk");
        let outcome = retrainer.retrain_once(&e).unwrap();
        // The "restarted" process publishes generation 6, and rotation
        // (keep 2) retires the pre-restart file, never the new one — the
        // lexicographically-latest file is always the freshest model.
        assert_eq!(outcome.meta.generation, 6);
        assert!(dir.join("snapshot-00000006.sqps").exists());
        retrainer.ingest_batch(batch_records("fresh", 100));
        retrainer.retrain_once(&e).unwrap();
        let mut kept: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|f| {
                let name = f.unwrap().file_name().into_string().unwrap();
                name.ends_with(".sqps").then_some(name)
            })
            .collect();
        kept.sort();
        assert_eq!(kept, ["snapshot-00000006.sqps", "snapshot-00000007.sqps"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_failure_still_publishes_in_memory() {
        let blocker = std::env::temp_dir().join(format!("sqp-retrain-blk-{}", std::process::id()));
        // snapshot_dir points at a *file*, so create_dir_all fails.
        std::fs::write(&blocker, b"in the way").unwrap();
        let e = engine("old");
        let retrainer = Retrainer::new(
            RetrainConfig {
                training: training(),
                snapshot_dir: Some(blocker.clone()),
                ..RetrainConfig::default()
            },
            seed_records("old"),
        );
        retrainer.ingest_batch(batch_records("fresh", 100));
        let outcome = retrainer.retrain_once(&e).unwrap();
        assert!(outcome.save_error.is_some(), "save should have failed");
        assert!(outcome.path.is_none());
        // Serving freshness is preserved regardless of the disk.
        assert_eq!(outcome.engine_generation, 1);
        assert_eq!(e.generation(), 1);
        assert!(e
            .suggest_context(&["start"], 10)
            .iter()
            .any(|s| s.query == "fresh::next"));
        std::fs::remove_file(&blocker).unwrap();
    }

    #[test]
    fn rotation_skips_aliens_protects_last_good_and_collects_errors() {
        use sqp_common::fsio::RealFs;
        use std::io;

        /// Real filesystem, except files whose name contains `sticky`
        /// refuse to delete — models one undeletable file mid-rotation.
        struct StickyFs;
        impl FsIo for StickyFs {
            fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
                RealFs.read(path)
            }
            fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
                RealFs.write_atomic(path, bytes)
            }
            fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
                RealFs.rename(from, to)
            }
            fn remove_file(&self, path: &Path) -> io::Result<()> {
                if path.to_string_lossy().contains("00000002") {
                    return Err(io::Error::other("sticky file refuses deletion"));
                }
                RealFs.remove_file(path)
            }
            fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
                RealFs.create_dir_all(dir)
            }
            fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
                RealFs.list(dir)
            }
        }

        let dir = std::env::temp_dir().join(format!("sqp-rotate-rob-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Rotation orders by parsed generation and never reads contents.
        for generation in 1..=5u64 {
            std::fs::write(dir.join(snapshot_file_name(generation)), b"snap").unwrap();
        }
        // Non-candidates rotation must never touch: an operator note, a
        // crashed save's tmp leftover, a quarantined generation.
        std::fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        std::fs::write(dir.join("snapshot-00000009.sqps.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("snapshot-00000004.sqps.quarantine"), b"bad").unwrap();

        // keep=2 over candidates 1..=5 → excess {1,2,3}; 1 is protected,
        // 2 refuses deletion, 3 actually goes.
        let protect = dir.join(snapshot_file_name(1));
        let report = rotate_snapshots_with(&StickyFs, &dir, 2, Some(&protect)).unwrap();
        assert_eq!(report.removed, 1);
        assert_eq!(report.skipped, 4, "3 aliens + 1 protected");
        assert_eq!(report.errors.len(), 1);
        assert!(
            report.errors[0].contains("generation 2"),
            "{:?}",
            report.errors
        );

        let mut kept: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        kept.sort();
        assert_eq!(
            kept,
            [
                "notes.txt",
                "snapshot-00000001.sqps",
                "snapshot-00000002.sqps",
                "snapshot-00000004.sqps",
                "snapshot-00000004.sqps.quarantine",
                "snapshot-00000005.sqps",
                "snapshot-00000009.sqps.tmp",
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_never_deletes_the_newest_generation() {
        let dir = std::env::temp_dir().join(format!("sqp-rotate-newest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for generation in 1..=3u64 {
            std::fs::write(dir.join(snapshot_file_name(generation)), b"snap").unwrap();
        }
        // Even keep=0 clamps to 1: the newest generation always survives.
        let report = rotate_snapshots_with(&RealFs, &dir, 0, None).unwrap();
        assert_eq!(report.removed, 2);
        assert!(report.errors.is_empty());
        let survivors: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(survivors, ["snapshot-00000003.sqps"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_loop_drains_on_shutdown() {
        let e = engine("old");
        let retrainer = Retrainer::new(
            RetrainConfig {
                training: training(),
                min_batch: 12,
                ..RetrainConfig::default()
            },
            seed_records("old"),
        );
        let report = std::thread::scope(|scope| {
            let handle = retrainer.spawn(scope, &e);
            retrainer.ingest_batch(batch_records("fresh", 100));
            // Wait for the triggered retrain to land, then stop.
            while retrainer.generations_published() == 0 {
                std::thread::yield_now();
            }
            retrainer.ingest(rec(99, 100, "tail"));
            retrainer.shutdown();
            handle.join().unwrap()
        });
        // One triggered retrain plus the shutdown drain of the tail record.
        assert_eq!(report.published, 2);
        assert_eq!(e.generation(), 2);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.records_ingested, 13);
        assert_eq!(retrainer.pending(), 0);
    }
}
