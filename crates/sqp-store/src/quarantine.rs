//! Snapshot quarantine and rollback: trust the disk, but verify it.
//!
//! The supervised retrain loop treats the on-disk file — not the in-memory
//! training result — as the publication source of truth: after saving a
//! generation it loads the file back and validates it
//! ([`validate_snapshot_file`]) before anything reaches the serving engine.
//! A file that fails validation (corrupted in flight, short-read, wrong
//! metadata, diverging probe suggestions) is renamed to `*.quarantine`
//! ([`quarantine_file`]) — preserved for forensics, invisible to warm
//! starts and rotation — and serving rolls back to the newest good
//! generation still on disk ([`newest_good_snapshot`]).
//!
//! Everything here goes through the [`FsIo`] seam, so the chaos harness
//! can corrupt a write or fail a rollback read deterministically.

use crate::error::SnapshotError;
use crate::format::{load_snapshot_with, SnapshotMeta};
use crate::retrain::parse_snapshot_name;
use sqp_common::fsio::FsIo;
use sqp_serve::ModelSnapshot;
use std::path::{Path, PathBuf};

/// The quarantine name for a snapshot file (`<name>.quarantine` appended,
/// e.g. `snapshot-00000007.sqps.quarantine`).
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".quarantine");
    PathBuf::from(name)
}

/// Rename a failed snapshot file out of service. The file keeps its bytes
/// (an operator can inspect what corrupted) but its name no longer parses
/// as a live generation, so warm starts, rollback scans, and rotation all
/// ignore it. Returns the quarantine path.
pub fn quarantine_file(io: &dyn FsIo, path: &Path) -> Result<PathBuf, SnapshotError> {
    let target = quarantine_path(path);
    io.rename(path, &target)?;
    Ok(target)
}

/// Load `path` back and check it is fit to serve. Validation layers:
///
/// 1. **Container integrity** — the load itself re-verifies magic,
///    version, whole-file checksum, and section structure (any in-flight
///    corruption or truncated read fails here);
/// 2. **Metadata identity** — the file's [`SnapshotMeta`] must equal
///    `expect` (a stale or alien file at the right name fails here);
/// 3. **Probe smoke check** — when given, the loaded model's suggestions
///    for `probe.1` must equal `probe.0`'s (the freshly trained in-memory
///    snapshot): the file does not just parse, it *serves* identically.
///
/// Returns the loaded snapshot — the supervised loop publishes this
/// loaded-from-disk value, never the in-memory one, so what serves is
/// exactly what a restart would recover.
pub fn validate_snapshot_file(
    io: &dyn FsIo,
    path: &Path,
    expect: &SnapshotMeta,
    probe: Option<(&ModelSnapshot, &[&str])>,
) -> Result<ModelSnapshot, SnapshotError> {
    let (loaded, meta) = load_snapshot_with(io, path)?;
    if meta != *expect {
        return Err(SnapshotError::Corrupt(format!(
            "snapshot meta mismatch: file says generation {} ({} sessions, {} records), \
             expected generation {} ({} sessions, {} records)",
            meta.generation,
            meta.trained_sessions,
            meta.source_records,
            expect.generation,
            expect.trained_sessions,
            expect.source_records,
        )));
    }
    if let Some((trained, context)) = probe {
        let want = trained.suggest(context, 5);
        let got = loaded.suggest(context, 5);
        if want != got {
            return Err(SnapshotError::Corrupt(format!(
                "probe suggestion mismatch for context {context:?}: \
                 trained model returns {want:?}, loaded file returns {got:?}"
            )));
        }
    }
    Ok(loaded)
}

/// The newest loadable generation in `dir`: scan `snapshot-N.sqps` files
/// newest-first and return the first that loads cleanly, together with how
/// many unreadable candidates were skipped on the way. Quarantined and
/// alien files are not candidates. Returns `(None, skipped)` when no
/// loadable snapshot exists (including when `dir` cannot be listed).
pub fn newest_good_snapshot(
    io: &dyn FsIo,
    dir: &Path,
) -> (Option<(PathBuf, ModelSnapshot, SnapshotMeta)>, usize) {
    let Ok(entries) = io.list(dir) else {
        return (None, 0);
    };
    let mut candidates: Vec<(u64, PathBuf)> = entries
        .into_iter()
        .filter_map(|path| {
            let (generation, quarantined) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_snapshot_name)?;
            (!quarantined).then_some((generation, path))
        })
        .collect();
    candidates.sort();
    let mut skipped = 0;
    for (_, path) in candidates.into_iter().rev() {
        match load_snapshot_with(io, &path) {
            Ok((snapshot, meta)) => return (Some((path, snapshot, meta)), skipped),
            // Unreadable or corrupt: skip, keep scanning older generations
            // — one bad file must not make the whole directory unbootable.
            Err(_) => skipped += 1,
        }
    }
    (None, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{save_snapshot, snapshot_to_bytes};
    use crate::retrain::snapshot_file_name;
    use sqp_common::fsio::RealFs;
    use sqp_logsim::RawLogRecord;
    use sqp_serve::{ModelSpec, TrainingConfig};

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn trained(prefix: &str) -> ModelSnapshot {
        let records: Vec<_> = (0..6)
            .flat_map(|u| {
                [
                    rec(u, 100, "start"),
                    rec(u, 150, &format!("{prefix}::next")),
                ]
            })
            .collect();
        ModelSnapshot::from_raw_logs(
            &records,
            &TrainingConfig {
                model: ModelSpec::Adjacency,
                ..TrainingConfig::default()
            },
        )
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqp-quarantine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn validation_passes_a_clean_file_and_rejects_wrong_meta() {
        let dir = scratch("validate");
        let snapshot = trained("g1");
        let meta = SnapshotMeta::describe(&snapshot, 1, 12);
        let path = dir.join(snapshot_file_name(1));
        save_snapshot(&path, &snapshot, &meta).unwrap();

        let loaded =
            validate_snapshot_file(&RealFs, &path, &meta, Some((&snapshot, &["start"]))).unwrap();
        assert_eq!(
            loaded.suggest(&["start"], 1),
            snapshot.suggest(&["start"], 1)
        );

        let wrong = SnapshotMeta {
            generation: 9,
            ..meta
        };
        let err = validate_snapshot_file(&RealFs, &path, &wrong, None).unwrap_err();
        assert!(err.to_string().contains("meta mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn probe_mismatch_is_rejected() {
        let dir = scratch("probe");
        // The file at generation 1's path actually holds a *different*
        // model trained to the same record counts — metadata matches, the
        // probe catches the divergence.
        let real = trained("real");
        let impostor = trained("impostor");
        let meta = SnapshotMeta::describe(&real, 1, 12);
        let path = dir.join(snapshot_file_name(1));
        save_snapshot(&path, &impostor, &meta).unwrap();

        assert!(validate_snapshot_file(&RealFs, &path, &meta, None).is_ok());
        let err =
            validate_snapshot_file(&RealFs, &path, &meta, Some((&real, &["start"]))).unwrap_err();
        assert!(
            err.to_string().contains("probe suggestion mismatch"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_renames_and_hides_from_scans() {
        let dir = scratch("rename");
        let snapshot = trained("g1");
        let meta = SnapshotMeta::describe(&snapshot, 1, 12);
        let path = dir.join(snapshot_file_name(1));
        save_snapshot(&path, &snapshot, &meta).unwrap();

        let parked = quarantine_file(&RealFs, &path).unwrap();
        assert!(!path.exists());
        assert_eq!(
            parked.file_name().unwrap().to_str().unwrap(),
            "snapshot-00000001.sqps.quarantine"
        );
        // Invisible to the rollback scan…
        let (found, skipped) = newest_good_snapshot(&RealFs, &dir);
        assert!(found.is_none());
        assert_eq!(skipped, 0);
        // …but still counted for generation numbering.
        assert_eq!(crate::retrain::latest_generation_on_disk(&dir), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollback_scan_skips_unreadable_and_finds_newest_good() {
        let dir = scratch("scan");
        for generation in 1..=2u64 {
            let snapshot = trained(&format!("g{generation}"));
            let meta = SnapshotMeta::describe(&snapshot, generation, 12);
            save_snapshot(dir.join(snapshot_file_name(generation)), &snapshot, &meta).unwrap();
        }
        // Generation 3 is corrupt on disk; generation 4 never finished
        // (alien tmp name); plus an unrelated file.
        let mut bad = snapshot_to_bytes(&trained("g3"), &SnapshotMeta::default()).unwrap();
        bad[20] ^= 0xFF;
        std::fs::write(dir.join(snapshot_file_name(3)), &bad).unwrap();
        std::fs::write(dir.join("snapshot-00000004.sqps.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();

        let (found, skipped) = newest_good_snapshot(&RealFs, &dir);
        let (path, snapshot, meta) = found.expect("generation 2 is loadable");
        assert_eq!(meta.generation, 2);
        assert_eq!(path, dir.join(snapshot_file_name(2)));
        assert_eq!(snapshot.suggest(&["start"], 1)[0].query, "g2::next");
        assert_eq!(skipped, 1, "only the corrupt generation 3 is skipped");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
