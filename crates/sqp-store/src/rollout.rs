//! Publishing snapshot files into a replicated tier: fan-out and rolling
//! upgrades with per-replica quarantine.
//!
//! [`WarmStart`](crate::warm::WarmStart) covers one engine; this module is
//! its N-replica counterpart for a [`RouterEngine`]. Two publication
//! shapes:
//!
//! * [`RouterPublish::publish_from_path`] — **fan-out**: load and validate
//!   the file *once*, then swap the same `Arc` into every replica. One
//!   model allocation serves the whole tier; an unreadable file publishes
//!   nowhere (all replicas keep serving, converged on the old
//!   generation).
//! * [`RouterPublish::rolling_publish`] — **rolling upgrade**: each
//!   replica performs its *own* read-and-validate of the file, in replica
//!   order, publishing as it goes. This is the deployment shape for
//!   validating new bytes incrementally: replica 0 is the canary, and mid-
//!   roll the tier deliberately serves two generations (each user still
//!   sees exactly one, because routing is sticky and each replica swaps
//!   atomically). A replica whose load or validation fails is
//!   **quarantined** — pinned serving its last-good snapshot, failure
//!   recorded in [`RouterStats`](sqp_router::RouterStats) — and the roll
//!   continues or aborts by [`RollPolicy`]. Rolls run concurrently with
//!   live membership changes: a replica that leaves the tier mid-roll is
//!   recorded in [`RollReport::retired`] (never panicked on), and one
//!   that joins behind the leading edge is brought up by a trailing pass
//!   (see [`RouterPublish::rolling_publish_with`]).
//!
//! Everything runs through the [`FsIo`] seam, so the chaos harness can
//! fail exactly one replica's read mid-roll and replay it bit-identically
//! (the `router-soak` tests in `sqp-bench` do exactly that).

use crate::error::SnapshotError;
use crate::format::{load_snapshot_with, SnapshotMeta};
use crate::warm::Published;
use sqp_common::fsio::{FsIo, RealFs};
use sqp_router::RouterEngine;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

/// What a rolling upgrade does when one replica's publish fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RollPolicy {
    /// Quarantine the failed replica and keep upgrading the rest. The tier
    /// ends skewed (failed replicas on last-good) but maximally fresh —
    /// right when the new generation is known-good and a failure is
    /// probably replica-local (an io blip on one read).
    ContinueOnFailure,
    /// Quarantine the failed replica and skip all later replicas, leaving
    /// them on the old generation. Right when a failure casts doubt on the
    /// new bytes themselves: the canary replica absorbs the damage and the
    /// bulk of the tier never touches the suspect file.
    AbortOnFailure,
}

/// One replica's step in a rolling upgrade, as seen by the `on_step`
/// observer callback.
#[derive(Debug)]
pub struct RollStep {
    /// The replica that was just attempted.
    pub replica: usize,
    /// Its new engine generation on success, or why it was quarantined.
    pub outcome: Result<u64, String>,
}

/// Outcome of a [`RouterPublish::rolling_publish`] run.
#[derive(Debug, Default)]
pub struct RollReport {
    /// Metadata of the target snapshot (from the first load that reached
    /// a publish); `None` when no replica managed to read the file.
    pub meta: Option<SnapshotMeta>,
    /// Replicas now serving the new generation, in upgrade order
    /// (replicas that joined mid-roll and were repaired by the trailing
    /// pass included).
    pub upgraded: Vec<usize>,
    /// Replicas that failed and were quarantined, with their errors.
    pub failed: Vec<(usize, String)>,
    /// Replicas never attempted because the roll aborted first.
    pub skipped: Vec<usize>,
    /// Replicas that left the tier mid-roll (a concurrent retire or
    /// remove) before their step could publish. Not counted against
    /// [`complete`](Self::complete): a replica that is gone serves
    /// nothing, on any generation.
    pub retired: Vec<usize>,
    /// True when [`RollPolicy::AbortOnFailure`] stopped the roll early.
    pub aborted: bool,
}

impl RollReport {
    /// True when every replica still in the tier now serves the target
    /// generation.
    pub fn complete(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty()
    }
}

/// Snapshot-file publication into a replicated serving tier.
///
/// # Examples
///
/// ```
/// use sqp_logsim::RawLogRecord;
/// use sqp_router::{RouterConfig, RouterEngine};
/// use sqp_serve::{ModelSnapshot, ModelSpec, TrainingConfig};
/// use sqp_store::{save_snapshot, RollPolicy, RouterPublish, SnapshotMeta};
/// use std::sync::Arc;
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let corpus = |tag: &str| -> ModelSnapshot {
///     let records: Vec<_> = (0..5)
///         .flat_map(|u| [rec(u, 100, "tea"), rec(u, 140, &format!("{tag} kettle"))])
///         .collect();
///     let cfg = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
///     ModelSnapshot::from_raw_logs(&records, &cfg)
/// };
///
/// let router = RouterEngine::new(Arc::new(corpus("old")), RouterConfig::default());
/// let fresh = corpus("new");
/// let path = std::env::temp_dir().join(format!("sqp-doc-roll-{}.sqps", std::process::id()));
/// save_snapshot(&path, &fresh, &SnapshotMeta::describe(&fresh, 1, 10)).unwrap();
///
/// let report = router.rolling_publish(&path, RollPolicy::ContinueOnFailure);
/// assert!(report.complete());
/// assert!(router.stats().is_converged());
/// assert_eq!(router.suggest_context(&["tea"], 1)[0].query, "new kettle");
/// # std::fs::remove_file(&path).unwrap();
/// ```
pub trait RouterPublish {
    /// Load the snapshot file once and fan it out to every replica. All-or-
    /// nothing: a load failure publishes to no replica and changes no
    /// quarantine state. On success every replica serves the same `Arc`
    /// (memory cost of one model, not N) and any quarantine is lifted.
    /// Returns the tier's minimum engine generation and the file's
    /// metadata.
    fn publish_from_path(&self, path: impl AsRef<Path>) -> Result<Published, SnapshotError>;

    /// Upgrade replicas one at a time, each re-reading and re-validating
    /// the file through the default filesystem. See
    /// [`rolling_publish_with`](Self::rolling_publish_with).
    fn rolling_publish(&self, path: impl AsRef<Path>, policy: RollPolicy) -> RollReport;

    /// Upgrade replicas one at a time through an explicit [`FsIo`] (the
    /// chaos seam), invoking `on_step` after every replica attempt — the
    /// hook tests use to hold the tier mid-roll, and operators use to
    /// pace a canary bake.
    ///
    /// Per replica, in id order over the membership pinned at roll start
    /// (draining replicas included — they are still serving): read +
    /// validate the file (container checksum and section structure),
    /// check its metadata matches the first load that reached a publish
    /// (a file swapped mid-roll must not split the tier across *three*
    /// generations), and atomically publish. Failures quarantine that
    /// replica — it keeps serving its last-good snapshot — and the roll
    /// continues or aborts per `policy`.
    ///
    /// A roll takes no membership lock, so the tier may reconfigure
    /// under it; both directions are absorbed rather than raced:
    ///
    /// * a replica **retired or removed mid-roll** is re-resolved at its
    ///   step against the live tier and recorded in
    ///   [`RollReport::retired`] (no step callback — it is no longer part
    ///   of the tier being upgraded), never panicked on;
    /// * a replica that **joined mid-roll** seeds from the freshest live
    ///   replica, which is the roll's leading edge once the canary has
    ///   published — but a join landing *before* that would seed the old
    ///   generation and end the roll a full generation behind with no
    ///   roll in flight. A trailing pass re-checks the live membership
    ///   after the pinned pass and rolls onto any such joiner (own
    ///   read-and-validate step, `on_step` fired, reported in
    ///   `upgraded`/`failed` like any other replica) until a check finds
    ///   none.
    fn rolling_publish_with(
        &self,
        io: &dyn FsIo,
        path: impl AsRef<Path>,
        policy: RollPolicy,
        on_step: &mut dyn FnMut(&RollStep),
    ) -> RollReport;
}

impl RouterPublish for RouterEngine {
    fn publish_from_path(&self, path: impl AsRef<Path>) -> Result<Published, SnapshotError> {
        let (snapshot, meta) = load_snapshot_with(&RealFs, path.as_ref())?;
        let engine_generation = self.publish(Arc::new(snapshot));
        Ok(Published {
            engine_generation,
            meta,
        })
    }

    fn rolling_publish(&self, path: impl AsRef<Path>, policy: RollPolicy) -> RollReport {
        self.rolling_publish_with(&RealFs, path, policy, &mut |_| {})
    }

    fn rolling_publish_with(
        &self,
        io: &dyn FsIo,
        path: impl AsRef<Path>,
        policy: RollPolicy,
        on_step: &mut dyn FnMut(&RollStep),
    ) -> RollReport {
        let path = path.as_ref();
        let mut report = RollReport::default();
        // Pin the membership once for the main pass. Ids are not handles:
        // each step re-resolves its id against the live tier (see the
        // trait docs for how departures and joins mid-roll are absorbed).
        let pinned: Vec<usize> = self
            .replica_ids()
            .into_iter()
            .map(|id| id as usize)
            .collect();
        let mut attempted: BTreeSet<usize> = pinned.iter().copied().collect();
        for replica in pinned {
            if report.aborted {
                report.skipped.push(replica);
                continue;
            }
            roll_step(self, io, path, policy, &mut report, on_step, replica);
        }
        // Trailing pass: roll onto replicas that joined mid-roll and
        // seeded behind the leading edge, until a check finds none. Each
        // id is attempted at most once, so the loop terminates as soon as
        // joins stop arriving. An aborted roll leaves trailing joiners
        // alone for the same reason it leaves the pinned tail skipped.
        while !report.aborted {
            let stats = self.stats();
            let target = stats.max_generation();
            let trailing: Vec<usize> = stats
                .replicas
                .iter()
                .filter(|row| row.generation < target && !attempted.contains(&(row.id as usize)))
                .map(|row| row.id as usize)
                .collect();
            if trailing.is_empty() {
                break;
            }
            for replica in trailing {
                attempted.insert(replica);
                if report.aborted {
                    report.skipped.push(replica);
                    continue;
                }
                roll_step(self, io, path, policy, &mut report, on_step, replica);
            }
        }
        report
    }
}

/// One replica's step of a roll: load, validate, identity-check, publish,
/// with quarantine on failure — all against the **live** membership. A
/// replica whose id no longer resolves (it retired or was removed since
/// the roll pinned it) goes to `report.retired` with no `on_step` call.
fn roll_step(
    router: &RouterEngine,
    io: &dyn FsIo,
    path: &Path,
    policy: RollPolicy,
    report: &mut RollReport,
    on_step: &mut dyn FnMut(&RollStep),
    replica: usize,
) {
    let attempt = load_snapshot_with(io, path)
        .map_err(|error| error.to_string())
        .and_then(|(snapshot, meta)| match &report.meta {
            // The file changed identity mid-roll: publishing it would
            // split the tier across three generations, so treat it as
            // this replica's failure.
            Some(first) if *first != meta => Err(format!(
                "snapshot changed mid-roll: first replica loaded generation {}, \
                 this replica loaded generation {}",
                first.generation, meta.generation
            )),
            _ => Ok((snapshot, meta)),
        });
    let outcome = match attempt {
        Ok((snapshot, meta)) => match router.try_publish_to(replica, Arc::new(snapshot)) {
            Some(generation) => {
                report.meta.get_or_insert(meta);
                report.upgraded.push(replica);
                Ok(generation)
            }
            None => {
                report.retired.push(replica);
                return;
            }
        },
        Err(error) => {
            if !router.try_mark_quarantined(replica, error.clone()) {
                report.retired.push(replica);
                return;
            }
            report.failed.push((replica, error.clone()));
            if policy == RollPolicy::AbortOnFailure {
                report.aborted = true;
            }
            Err(error)
        }
    };
    on_step(&RollStep { replica, outcome });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::save_snapshot;
    use crate::retrain::snapshot_file_name;
    use sqp_logsim::RawLogRecord;
    use sqp_router::RouterConfig;
    use sqp_serve::{ModelSnapshot, ModelSpec, TrainingConfig};
    use std::path::PathBuf;

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn trained(prefix: &str) -> ModelSnapshot {
        let records: Vec<_> = (0..6)
            .flat_map(|u| {
                [
                    rec(u, 100, "start"),
                    rec(u, 150, &format!("{prefix}::next")),
                ]
            })
            .collect();
        ModelSnapshot::from_raw_logs(
            &records,
            &TrainingConfig {
                model: ModelSpec::Adjacency,
                ..TrainingConfig::default()
            },
        )
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqp-rollout-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn save(dir: &Path, generation: u64, prefix: &str) -> PathBuf {
        let snapshot = trained(prefix);
        let path = dir.join(snapshot_file_name(generation));
        save_snapshot(
            &path,
            &snapshot,
            &SnapshotMeta::describe(&snapshot, generation, 12),
        )
        .unwrap();
        path
    }

    fn router() -> RouterEngine {
        RouterEngine::new(
            Arc::new(trained("old")),
            RouterConfig {
                replicas: 4,
                ..RouterConfig::default()
            },
        )
    }

    #[test]
    fn fan_out_publishes_every_replica_from_one_load() {
        let dir = scratch("fanout");
        let path = save(&dir, 1, "new");
        let r = router();
        let published = r.publish_from_path(&path).unwrap();
        assert_eq!(published.engine_generation, 1);
        assert_eq!(published.meta.generation, 1);
        let stats = r.stats();
        assert!(stats.is_converged());
        assert_eq!(stats.max_generation(), 1);
        // One Arc serves all replicas.
        for index in 1..r.replica_count() {
            assert!(Arc::ptr_eq(
                &r.replica(0).snapshot(),
                &r.replica(index).snapshot()
            ));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fan_out_failure_touches_nothing() {
        let dir = scratch("fanout-bad");
        let r = router();
        assert!(r.publish_from_path(dir.join("missing.sqps")).is_err());
        let stats = r.stats();
        assert!(stats.is_converged());
        assert_eq!(stats.max_generation(), 0);
        assert_eq!(stats.quarantined(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rolling_publish_upgrades_in_order_and_completes() {
        let dir = scratch("roll");
        let path = save(&dir, 1, "new");
        let r = router();
        let mut seen = Vec::new();
        let report =
            r.rolling_publish_with(&RealFs, &path, RollPolicy::ContinueOnFailure, &mut |step| {
                // Observe genuine mid-roll skew: after replica 0's step,
                // replicas 1.. still serve the old generation.
                if step.replica == 0 {
                    let stats = r.stats();
                    assert_eq!(stats.generation_skew(), 1);
                }
                seen.push(step.replica);
            });
        assert!(report.complete());
        assert_eq!(report.upgraded, vec![0, 1, 2, 3]);
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(report.meta.unwrap().generation, 1);
        assert!(r.stats().is_converged());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_quarantines_everyone_or_aborts() {
        let dir = scratch("roll-missing");
        let r = router();
        let report = r.rolling_publish(dir.join("missing.sqps"), RollPolicy::ContinueOnFailure);
        assert_eq!(report.failed.len(), 4);
        assert!(report.meta.is_none());
        assert_eq!(r.stats().quarantined(), 4);

        let r2 = router();
        let report = r2.rolling_publish(dir.join("missing.sqps"), RollPolicy::AbortOnFailure);
        assert!(report.aborted);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.skipped, vec![1, 2, 3]);
        assert_eq!(r2.stats().quarantined(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_swapped_mid_roll_fails_later_replicas() {
        let dir = scratch("roll-swap");
        let path = save(&dir, 1, "new");
        let r = router();
        let mut steps = 0;
        let report =
            r.rolling_publish_with(&RealFs, &path, RollPolicy::ContinueOnFailure, &mut |step| {
                steps += 1;
                if step.replica == 1 {
                    // Overwrite the file with a different generation while
                    // the roll is between replicas 1 and 2.
                    let snapshot = trained("sneaky");
                    save_snapshot(&path, &snapshot, &SnapshotMeta::describe(&snapshot, 9, 12))
                        .unwrap();
                }
            });
        assert_eq!(steps, 4);
        assert_eq!(report.upgraded, vec![0, 1]);
        assert_eq!(report.failed.len(), 2);
        assert!(report.failed[0].1.contains("changed mid-roll"));
        // The tier serves generations {0 (quarantined last-good), 1} — the
        // sneaky generation 9 never reached any replica.
        let stats = r.stats();
        assert_eq!(stats.max_generation(), 1);
        assert_eq!(stats.quarantined(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replica_retired_mid_roll_is_recorded_not_panicked() {
        let dir = scratch("roll-retire");
        let path = save(&dir, 1, "new");
        let r = router();
        let report =
            r.rolling_publish_with(&RealFs, &path, RollPolicy::ContinueOnFailure, &mut |step| {
                if step.replica == 0 {
                    // Between replica 0's publish and replica 1's step,
                    // replica 2 drains and retires — exactly the
                    // concurrency a live tier allows, since rolls take no
                    // membership lock.
                    r.begin_drain(2, 0).unwrap();
                    r.retire_replica(2).unwrap();
                }
            });
        assert_eq!(report.upgraded, vec![0, 1, 3]);
        assert_eq!(report.retired, vec![2]);
        assert!(report.complete(), "a departed replica is not a failure");
        assert!(r.stats().is_converged());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replica_removed_mid_roll_is_not_quarantined_posthumously() {
        let dir = scratch("roll-remove");
        let r = router();
        // Every step fails (missing file); replica 2 vanishes after the
        // canary's step, so its failure has no live replica to quarantine.
        let report = r.rolling_publish_with(
            &RealFs,
            dir.join("missing.sqps"),
            RollPolicy::ContinueOnFailure,
            &mut |step| {
                if step.replica == 0 {
                    r.remove_replica(2).unwrap();
                }
            },
        );
        let failed_ids: Vec<usize> = report.failed.iter().map(|(id, _)| *id).collect();
        assert_eq!(failed_ids, vec![0, 1, 3]);
        assert_eq!(report.retired, vec![2]);
        assert_eq!(r.stats().quarantined(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An [`FsIo`] that joins a replica into the tier on the first read —
    /// i.e. *before the canary publishes*, the one window where a joiner
    /// seeds the old generation and the pinned pass would leave it behind.
    struct JoinOnFirstRead<'a> {
        router: &'a RouterEngine,
        joined: std::sync::atomic::AtomicBool,
    }

    impl FsIo for JoinOnFirstRead<'_> {
        fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
            if !self.joined.swap(true, std::sync::atomic::Ordering::SeqCst) {
                self.router.join_replica(0);
            }
            RealFs.read(path)
        }
        fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            RealFs.write_atomic(path, bytes)
        }
        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            RealFs.rename(from, to)
        }
        fn remove_file(&self, path: &Path) -> std::io::Result<()> {
            RealFs.remove_file(path)
        }
        fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
            RealFs.create_dir_all(dir)
        }
        fn list(&self, dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
            RealFs.list(dir)
        }
    }

    #[test]
    fn joiner_seeded_before_the_canary_is_repaired_by_the_trailing_pass() {
        let dir = scratch("roll-join");
        let path = save(&dir, 1, "new");
        let r = router();
        let io = JoinOnFirstRead {
            router: &r,
            joined: std::sync::atomic::AtomicBool::new(false),
        };
        let report = r.rolling_publish_with(&io, &path, RollPolicy::ContinueOnFailure, &mut |_| {});
        // The joiner (id 4) seeded generation 0, so the pinned pass alone
        // would have ended the roll with it a full generation behind and
        // no roll in flight; the trailing pass rolls onto it.
        assert_eq!(report.upgraded, vec![0, 1, 2, 3, 4]);
        assert!(report.complete());
        let stats = r.stats();
        assert!(stats.is_converged(), "joiner left behind: {stats:?}");
        assert_eq!(stats.max_generation(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantined_replica_serves_last_good_until_good_publish() {
        let dir = scratch("roll-recover");
        let r = router();
        // Every replica fails: bogus file.
        std::fs::write(dir.join("bogus.sqps"), b"not a snapshot").unwrap();
        let report = r.rolling_publish(dir.join("bogus.sqps"), RollPolicy::ContinueOnFailure);
        assert_eq!(report.failed.len(), 4);
        // Still serving the old model.
        assert_eq!(r.suggest_context(&["start"], 1)[0].query, "old::next");
        // A later good fan-out lifts all quarantines.
        let path = save(&dir, 1, "new");
        r.publish_from_path(&path).unwrap();
        assert_eq!(r.stats().quarantined(), 0);
        assert_eq!(r.suggest_context(&["start"], 1)[0].query, "new::next");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
