//! Warm start: boot and refresh serving directly from snapshot files.
//!
//! Cold start (retrain from raw logs) takes seconds to minutes; warm start
//! (load a snapshot file) takes milliseconds, because the file's section
//! layout lets every structure be pre-sized. [`WarmStart`] puts the two
//! file-driven operations a serving binary needs on
//! [`ServeEngine`] itself:
//!
//! * [`ServeEngine::from_path`](WarmStart::from_path) — construct an engine
//!   serving the model in a snapshot file;
//! * [`ServeEngine::publish_from_path`](WarmStart::publish_from_path) —
//!   hot-swap a newly written snapshot file into a live engine (the
//!   file-system half of the retrain loop: one process retrains and saves,
//!   the serving process publishes the file).

use crate::error::SnapshotError;
use crate::format::{load_snapshot, SnapshotMeta};
use sqp_serve::{EngineConfig, ServeEngine};
use std::path::Path;
use std::sync::Arc;

/// What [`WarmStart::publish_from_path`] swapped in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Published {
    /// The engine's generation counter after the publish (counts publishes
    /// into *this* engine, not snapshot-file generations).
    pub engine_generation: u64,
    /// Metadata of the snapshot file that was published.
    pub meta: SnapshotMeta,
}

/// File-driven construction and publication for serving engines.
///
/// # Examples
///
/// ```
/// use sqp_logsim::RawLogRecord;
/// use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
/// use sqp_store::{save_snapshot, SnapshotMeta, WarmStart};
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let records: Vec<_> = (0..5)
///     .flat_map(|u| [rec(u, 100, "tea"), rec(u, 140, "tea kettle")])
///     .collect();
/// let cfg = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
/// let trained = ModelSnapshot::from_raw_logs(&records, &cfg);
///
/// let path = std::env::temp_dir().join(format!("sqp-doc-warm-{}.sqps", std::process::id()));
/// save_snapshot(&path, &trained, &SnapshotMeta::describe(&trained, 0, 10)).unwrap();
///
/// // Warm start: no raw logs, no retraining — just the file.
/// let engine = ServeEngine::from_path(&path, EngineConfig::default()).unwrap();
/// assert_eq!(engine.suggest_context(&["tea"], 1)[0].query, "tea kettle");
/// # std::fs::remove_file(&path).unwrap();
/// ```
pub trait WarmStart: Sized {
    /// Boot an engine from a snapshot file.
    fn from_path(path: impl AsRef<Path>, cfg: EngineConfig) -> Result<Self, SnapshotError>;

    /// Load a snapshot file and atomically publish it into this live
    /// engine. In-flight requests finish on the old snapshot; the load and
    /// validation happen entirely before the swap, so a bad file leaves
    /// the engine serving its current model untouched.
    fn publish_from_path(&self, path: impl AsRef<Path>) -> Result<Published, SnapshotError>;
}

impl WarmStart for ServeEngine {
    fn from_path(path: impl AsRef<Path>, cfg: EngineConfig) -> Result<Self, SnapshotError> {
        let (snapshot, _meta) = load_snapshot(path)?;
        Ok(ServeEngine::new(Arc::new(snapshot), cfg))
    }

    fn publish_from_path(&self, path: impl AsRef<Path>) -> Result<Published, SnapshotError> {
        let (snapshot, meta) = load_snapshot(path)?;
        let engine_generation = self.publish(Arc::new(snapshot));
        Ok(Published {
            engine_generation,
            meta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::save_snapshot;
    use sqp_logsim::RawLogRecord;
    use sqp_serve::{ModelSnapshot, ModelSpec, TrainingConfig};

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn saved(dir: &Path, name: &str, prefix: &str, generation: u64) -> std::path::PathBuf {
        let records: Vec<_> = (0..6)
            .flat_map(|u| {
                [
                    rec(u, 100, "start"),
                    rec(u, 150, &format!("{prefix}::next")),
                ]
            })
            .collect();
        let snapshot = ModelSnapshot::from_raw_logs(
            &records,
            &TrainingConfig {
                model: ModelSpec::Adjacency,
                ..TrainingConfig::default()
            },
        );
        let path = dir.join(name);
        save_snapshot(
            &path,
            &snapshot,
            &SnapshotMeta::describe(&snapshot, generation, records.len() as u64),
        )
        .unwrap();
        path
    }

    #[test]
    fn from_path_then_publish_from_path() {
        let dir = std::env::temp_dir().join(format!("sqp-warm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let first = saved(&dir, "gen0.sqps", "old", 0);
        let second = saved(&dir, "gen1.sqps", "new", 1);

        let engine = ServeEngine::from_path(&first, EngineConfig::default()).unwrap();
        engine.track(7, "start", 100);
        assert_eq!(engine.suggest(7, 1, 110)[0].query, "old::next");

        let published = engine.publish_from_path(&second).unwrap();
        assert_eq!(published.engine_generation, 1);
        assert_eq!(published.meta.generation, 1);
        // Tracked session state survives the swap (text-based contexts).
        assert_eq!(engine.suggest(7, 1, 120)[0].query, "new::next");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_file_leaves_live_engine_untouched() {
        let dir = std::env::temp_dir().join(format!("sqp-warm-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = saved(&dir, "good.sqps", "old", 0);
        let engine = ServeEngine::from_path(&good, EngineConfig::default()).unwrap();

        let corrupt = dir.join("corrupt.sqps");
        let mut raw = std::fs::read(&good).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        std::fs::write(&corrupt, &raw).unwrap();

        assert!(engine.publish_from_path(&corrupt).is_err());
        assert!(engine.publish_from_path(dir.join("missing.sqps")).is_err());
        assert_eq!(engine.generation(), 0, "failed publishes must not swap");
        assert_eq!(
            engine.suggest_context(&["start"], 1)[0].query,
            "old::next",
            "engine still serves the original model"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
