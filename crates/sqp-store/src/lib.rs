//! # sqp-store — the model lifecycle subsystem
//!
//! The paper's deployment sketch (§V-F.2) assumes the trained model is
//! "loaded into RAM for real-time online query prediction". This crate is
//! everything between *trained* and *loaded*: full-snapshot persistence,
//! warm-start serving, and the incremental retrain loop that keeps a live
//! engine fresh.
//!
//! Three layers:
//!
//! * [`mod@format`] — **snapshot persistence v3**: one versioned, checksummed
//!   file carrying the frozen [`Interner`](sqp_common::Interner), the
//!   trained model behind a [`ModelKind`] tag, and lifecycle
//!   [`SnapshotMeta`]. [`save_snapshot`] / [`load_snapshot`] round-trip a
//!   ready [`ModelSnapshot`](sqp_serve::ModelSnapshot); the length-prefixed
//!   section layout (specified byte-by-byte in the repository's
//!   `FORMAT.md`) lets the loader pre-size every structure.
//! * [`warm`] — **warm start**: [`WarmStart::from_path`] boots a
//!   [`ServeEngine`](sqp_serve::ServeEngine) directly from a snapshot
//!   file; [`WarmStart::publish_from_path`] hot-swaps a newly written file
//!   into a live engine.
//! * [`retrain`] — the **retrain loop**: a [`Retrainer`] buffers incoming
//!   [`RawLogRecord`](sqp_logsim::RawLogRecord)s, re-runs the training
//!   pipeline over a sliding corpus window on a background scoped thread,
//!   writes each generation to disk, and publishes it through the engine's
//!   swap cell — the repo's end-to-end
//!   log-stream → retrain → hot-swap → suggest scenario.
//!
//! Every load-path failure is a typed [`SnapshotError`]; corrupted,
//! truncated, or wrong-version files can never produce a partial snapshot
//! or a panic.
//!
//! On top of the happy-path loop sits the **resilience layer**:
//!
//! * [`quarantine`] — post-save validation ([`validate_snapshot_file`]):
//!   a freshly written generation is loaded back and checked (container
//!   integrity, metadata identity, probe-suggestion smoke test) before it
//!   may serve; failures are parked as `*.quarantine` files and serving
//!   rolls back to the [`newest_good_snapshot`] on disk.
//! * [`supervise`] — the **supervised retrain loop**: a [`Supervisor`]
//!   wraps the retrain cycle with panic isolation, capped-backoff save
//!   retries, quarantine/rollback, and a circuit breaker that degrades to
//!   "serve the last good snapshot" under persistent failure, reporting
//!   typed [`RetrainerHealth`].
//!
//! And for the replicated tier ([`RouterEngine`](sqp_router::RouterEngine)):
//!
//! * [`rollout`] — **fan-out and rolling publication**:
//!   [`RouterPublish::publish_from_path`] loads a snapshot file once and
//!   swaps it into every replica; [`RouterPublish::rolling_publish`]
//!   upgrades replicas one at a time (each re-validating the bytes
//!   itself), quarantining a failed replica on its last-good snapshot
//!   while the roll continues or aborts by [`RollPolicy`].
//!
//! Both layers run on the [`sqp_common::fsio::FsIo`] /
//! [`sqp_common::clock::Clock`] / [`sqp_common::hazard::Hazard`] seams, so
//! the `sqp-faults` chaos harness can drive them through deterministic
//! disk faults, virtual time, and scheduled panics.
//!
//! # Examples
//!
//! The full lifecycle in one sitting — train, save, warm-start, retrain,
//! publish:
//!
//! ```
//! use sqp_logsim::RawLogRecord;
//! use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
//! use sqp_store::{save_snapshot, RetrainConfig, Retrainer, SnapshotMeta, WarmStart};
//!
//! let rec = |machine, ts, q: &str| RawLogRecord {
//!     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
//! };
//! let seed: Vec<_> = (0..6)
//!     .flat_map(|u| [rec(u, 100, "news"), rec(u, 160, "news today")])
//!     .collect();
//! let training = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
//!
//! // Offline: train and persist generation 0.
//! let trained = ModelSnapshot::from_raw_logs(&seed, &training);
//! let path = std::env::temp_dir().join(format!("sqp-doc-lib-{}.sqps", std::process::id()));
//! save_snapshot(&path, &trained, &SnapshotMeta::describe(&trained, 0, seed.len() as u64)).unwrap();
//!
//! // Online: warm-start serving from the file, then fold in new traffic.
//! let engine = ServeEngine::from_path(&path, EngineConfig::default()).unwrap();
//! let retrainer = Retrainer::new(
//!     RetrainConfig { training, ..RetrainConfig::default() },
//!     seed,
//! );
//! for u in 100..110 {
//!     retrainer.ingest(rec(u, 100, "news"));
//!     retrainer.ingest(rec(u, 160, "news live stream"));
//! }
//! retrainer.retrain_once(&engine).unwrap();
//! assert_eq!(engine.generation(), 1);
//! assert!(engine
//!     .suggest_context(&["news"], 2)
//!     .iter()
//!     .any(|s| s.query == "news live stream"));
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![deny(missing_docs)]

pub mod error;
pub mod format;
pub mod quarantine;
pub mod retrain;
pub mod rollout;
pub mod supervise;
pub mod warm;

pub use error::{RetrainError, SnapshotError};
pub use format::{
    checksum_fnv1a, load_snapshot, load_snapshot_with, parse_section_table, save_snapshot,
    save_snapshot_with, snapshot_from_bytes, snapshot_to_bytes, SectionEntry, SnapshotMeta,
    FORMAT_VERSION, MAGIC,
};
pub use quarantine::{
    newest_good_snapshot, quarantine_file, quarantine_path, validate_snapshot_file,
};
pub use retrain::{
    latest_generation_on_disk, latest_generation_on_disk_with, parse_snapshot_name,
    rotate_snapshots, rotate_snapshots_with, snapshot_file_name, PublishOutcome, RetrainConfig,
    RetrainReport, Retrainer, RotationReport,
};
pub use rollout::{RollPolicy, RollReport, RollStep, RouterPublish};
pub use supervise::{BreakerState, RetrainerHealth, StepOutcome, SuperviseConfig, Supervisor};
pub use warm::{Published, WarmStart};

// The model-kind tag is defined next to the model codecs in sqp-core;
// re-exported here because it is part of the snapshot file's vocabulary.
pub use sqp_core::persist::ModelKind;
