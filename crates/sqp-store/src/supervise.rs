//! The supervised retrain loop: retraining that survives its own failures.
//!
//! [`Retrainer::retrain_once`](crate::Retrainer::retrain_once) assumes the
//! happy path — training returns, the disk accepts the write, the file is
//! what was written. The [`Supervisor`] wraps the same drain→train→save→
//! publish cycle in a failure-containment shell:
//!
//! * **Panic isolation** — training runs under
//!   [`catch_unwind`](std::panic::catch_unwind); a crashed training
//!   computation becomes a typed
//!   [`RetrainError::TrainingPanicked`], not a dead loop, and the drained
//!   window stays in the sliding corpus for the next attempt.
//! * **Save retries** — disk writes retry with capped exponential backoff
//!   (through the [`Clock`] seam, so tests run the waits virtually).
//! * **Disk as source of truth** — after a save, the file is loaded back
//!   and validated ([`validate_snapshot_file`]); what gets published is
//!   the *loaded* snapshot, so serving state is exactly what a restart
//!   would recover. A file that fails validation is quarantined and
//!   serving rolls back to the newest good generation on disk.
//! * **Circuit breaker** — consecutive failures past a threshold trip the
//!   loop [`BreakerState::Open`]: retrain attempts stop, the engine keeps
//!   serving its last good snapshot, and after a cooldown one half-open
//!   probe attempt decides between recovery and re-tripping. The state
//!   machine is the shared [`sqp_common::breaker::Breaker`] — the same one
//!   `sqp-net`'s `RemoteEngine` uses per endpoint.
//!
//! Note the semantic difference from the unsupervised loop: `retrain_once`
//! publishes in-memory even when the disk fails (freshness over
//! durability); the supervisor refuses to publish anything it could not
//! persist and validate (durability over freshness). Production systems
//! that need restart-consistency run the supervisor.

use crate::error::{RetrainError, SnapshotError};
use crate::format::{save_snapshot_with, SnapshotMeta};
use crate::quarantine::{newest_good_snapshot, quarantine_file, validate_snapshot_file};
use crate::retrain::{rotate_snapshots_with, snapshot_file_name, Retrainer};
use sqp_common::breaker::{Admission, Backoff, Breaker, BreakerConfig};
use sqp_common::clock::{Clock, RealClock};
use sqp_common::fsio::{FsIo, RealFs};
use sqp_common::hazard::{Hazard, NoHazard};
use sqp_serve::{ModelSnapshot, ServeEngine};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Failure-handling parameters of the supervised loop.
#[derive(Clone, Debug)]
pub struct SuperviseConfig {
    /// Snapshot-save attempts per step (min 1) before the step fails with
    /// [`RetrainError::SaveFailed`].
    pub max_save_attempts: u32,
    /// Backoff before the first save retry; doubles per retry.
    pub backoff_initial: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Consecutive step failures that trip the breaker open (min 1). A
    /// failed half-open probe re-trips immediately regardless.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before allowing one half-open
    /// probe attempt.
    pub cooldown: Duration,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        Self {
            max_save_attempts: 3,
            backoff_initial: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            breaker_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

pub use sqp_common::breaker::BreakerState;

/// Point-in-time health of the supervised loop, for operators and tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetrainerHealth {
    /// Current breaker position.
    pub breaker: BreakerState,
    /// Consecutive failed steps (reset by any success).
    pub consecutive_failures: u32,
    /// Steps that published a validated generation.
    pub retrains_ok: u64,
    /// Steps that failed (panic, save exhaustion, quarantine).
    pub failures: u64,
    /// Individual save retries performed across all steps.
    pub save_retries: u64,
    /// Snapshot files quarantined after failing validation.
    pub quarantined: u64,
    /// Rollback publishes performed after a quarantine.
    pub rollbacks: u64,
    /// Unreadable files skipped over by rollback scans.
    pub rollback_files_skipped: u64,
    /// Rotation passes that reported per-file deletion errors.
    pub rotation_errors: u64,
    /// Times the breaker tripped open.
    pub breaker_trips: u64,
    /// Times a half-open probe closed the breaker again.
    pub breaker_recoveries: u64,
    /// Steps refused because the breaker was open.
    pub steps_skipped_open: u64,
    /// Generation of the last snapshot that passed validation and
    /// published (including rollback targets).
    pub last_good_generation: Option<u64>,
    /// Human-readable description of the most recent failure.
    pub last_error: Option<String>,
}

/// What one [`Supervisor::step`] did.
#[derive(Debug)]
pub enum StepOutcome {
    /// Nothing to train on (empty window).
    Idle,
    /// The breaker is open; no retrain was attempted.
    BreakerOpen {
        /// Milliseconds until the cooldown elapses and a half-open probe
        /// is allowed.
        remaining_millis: u64,
    },
    /// A generation was trained, persisted, validated, and published.
    Published {
        /// The published generation number.
        generation: u64,
        /// Where it lives on disk (`None` when no snapshot directory is
        /// configured).
        path: Option<PathBuf>,
    },
    /// The step failed; the engine keeps serving its last good snapshot.
    /// Details are also folded into [`RetrainerHealth`].
    Failed(RetrainError),
}

#[derive(Debug)]
struct Inner {
    retrains_ok: u64,
    failures: u64,
    save_retries: u64,
    quarantined: u64,
    rollbacks: u64,
    rollback_files_skipped: u64,
    rotation_errors: u64,
    steps_skipped_open: u64,
    /// Last validated-and-published snapshot: generation and path. The
    /// path is additionally protected from rotation.
    last_good: Option<(u64, PathBuf)>,
    last_error: Option<String>,
}

/// Supervision shell around a [`Retrainer`]: drives the same retrain cycle
/// with panic isolation, save retries, post-save validation with
/// quarantine/rollback, and a circuit breaker.
///
/// # Examples
///
/// Drive supervised steps synchronously (the background loop calls exactly
/// this):
///
/// ```
/// use std::sync::Arc;
/// use sqp_logsim::RawLogRecord;
/// use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
/// use sqp_store::{RetrainConfig, Retrainer, StepOutcome, SuperviseConfig, Supervisor};
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let seed: Vec<_> = (0..5)
///     .flat_map(|u| [rec(u, 100, "maps"), rec(u, 150, "maps directions")])
///     .collect();
/// let training = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
/// let engine = ServeEngine::new(
///     Arc::new(ModelSnapshot::from_raw_logs(&seed, &training)),
///     EngineConfig::default(),
/// );
/// let retrainer = Retrainer::new(
///     RetrainConfig { training, ..RetrainConfig::default() },
///     seed,
/// );
/// let supervisor = Supervisor::new(&retrainer, SuperviseConfig::default());
///
/// for u in 10..20 {
///     retrainer.ingest(rec(u, 100, "maps"));
///     retrainer.ingest(rec(u, 150, "maps satellite view"));
/// }
/// let outcome = supervisor.step(&engine);
/// assert!(matches!(outcome, StepOutcome::Published { generation: 1, .. }));
/// assert_eq!(supervisor.health().retrains_ok, 1);
/// assert_eq!(engine.suggest_context(&["maps"], 1)[0].query, "maps satellite view");
/// ```
pub struct Supervisor<'r> {
    retrainer: &'r Retrainer,
    cfg: SuperviseConfig,
    io: Arc<dyn FsIo>,
    clock: Arc<dyn Clock>,
    hazard: Arc<dyn Hazard>,
    breaker: Breaker,
    inner: Mutex<Inner>,
}

impl<'r> Supervisor<'r> {
    /// A supervisor over `retrainer` wired to the production seams (real
    /// filesystem, real clock, no-op hazard).
    pub fn new(retrainer: &'r Retrainer, cfg: SuperviseConfig) -> Self {
        Self::with_seams(
            retrainer,
            cfg,
            Arc::new(RealFs),
            Arc::new(RealClock),
            Arc::new(NoHazard),
        )
    }

    /// A supervisor with explicit fault seams — the constructor chaos
    /// harnesses use to inject disk faults, virtual time, and scheduled
    /// panics.
    pub fn with_seams(
        retrainer: &'r Retrainer,
        cfg: SuperviseConfig,
        io: Arc<dyn FsIo>,
        clock: Arc<dyn Clock>,
        hazard: Arc<dyn Hazard>,
    ) -> Self {
        let breaker = Breaker::new(BreakerConfig {
            threshold: cfg.breaker_threshold,
            cooldown: cfg.cooldown,
        });
        Self {
            retrainer,
            cfg,
            io,
            clock,
            hazard,
            breaker,
            inner: Mutex::new(Inner {
                retrains_ok: 0,
                failures: 0,
                save_retries: 0,
                quarantined: 0,
                rollbacks: 0,
                rollback_files_skipped: 0,
                rotation_errors: 0,
                steps_skipped_open: 0,
                last_good: None,
                last_error: None,
            }),
        }
    }

    /// The retrainer being supervised.
    pub fn retrainer(&self) -> &'r Retrainer {
        self.retrainer
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        // Poison recovery: `Inner` is counters plus small value fields,
        // each updated by single assignments — no torn intermediate state
        // is possible, so a poisoned lock still guards valid health data.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the loop's health.
    pub fn health(&self) -> RetrainerHealth {
        let breaker = self.breaker.stats();
        let inner = self.lock_inner();
        RetrainerHealth {
            breaker: breaker.state,
            consecutive_failures: breaker.consecutive_failures,
            retrains_ok: inner.retrains_ok,
            failures: inner.failures,
            save_retries: inner.save_retries,
            quarantined: inner.quarantined,
            rollbacks: inner.rollbacks,
            rollback_files_skipped: inner.rollback_files_skipped,
            rotation_errors: inner.rotation_errors,
            breaker_trips: breaker.trips,
            breaker_recoveries: breaker.recoveries,
            steps_skipped_open: inner.steps_skipped_open,
            last_good_generation: inner.last_good.as_ref().map(|(g, _)| *g),
            last_error: inner.last_error.clone(),
        }
    }

    /// Record a failed step: count it, remember the error, and feed the
    /// breaker (which trips at the threshold, or on any half-open probe
    /// failure).
    fn fail(&self, err: RetrainError) -> StepOutcome {
        {
            let mut inner = self.lock_inner();
            inner.failures += 1;
            inner.last_error = Some(err.to_string());
        }
        self.breaker.record_failure(self.clock.now_millis());
        StepOutcome::Failed(err)
    }

    /// Record a successful publish: close the breaker (counting a recovery
    /// if it was not closed) and remember the generation as last-good.
    fn succeed(&self, generation: u64, path: Option<PathBuf>) -> StepOutcome {
        {
            let mut inner = self.lock_inner();
            inner.retrains_ok += 1;
            if let Some(p) = &path {
                inner.last_good = Some((generation, p.clone()));
            }
        }
        self.breaker.record_success();
        StepOutcome::Published { generation, path }
    }

    /// Run one supervised retrain step against `engine`.
    ///
    /// Pipeline: breaker admission → drain window → train (panic-isolated)
    /// → reserve generation → save (with retries) → load-back validation →
    /// publish the loaded snapshot → rotate. Any failure leaves the engine
    /// on its last good snapshot and feeds the breaker.
    pub fn step(&self, engine: &ServeEngine) -> StepOutcome {
        let admission = self.breaker.admit(self.clock.now_millis());
        if let Admission::Refused { remaining_millis } = admission {
            self.lock_inner().steps_skipped_open += 1;
            return StepOutcome::BreakerOpen { remaining_millis };
        }

        let Some(window) = self.retrainer.drain_window() else {
            // An idle step neither proves nor disproves recovery: release
            // a held half-open probe slot so the next real step gets it.
            if admission == Admission::Probe {
                self.breaker.cancel_probe();
            }
            return StepOutcome::Idle;
        };

        // Train under panic isolation. The closure only borrows immutable
        // data (the window, the config) plus the hazard seam; a panic
        // cannot leave partial state behind, so AssertUnwindSafe holds.
        let training = &self.retrainer.config().training;
        let trained = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.hazard.strike("store.retrain.train");
            ModelSnapshot::from_raw_logs(&window, training)
        }));
        let snapshot = match trained {
            Ok(snapshot) => snapshot,
            Err(payload) => return self.fail(RetrainError::TrainingPanicked(panic_text(payload))),
        };

        let generation = self.retrainer.reserve_generation();
        let meta = SnapshotMeta::describe(&snapshot, generation, window.len() as u64);

        let Some(dir) = self.retrainer.config().snapshot_dir.clone() else {
            // No snapshot directory: nothing to persist or validate
            // against; publish the in-memory result directly.
            engine.publish(Arc::new(snapshot));
            return self.succeed(generation, None);
        };
        if let Err(e) = self.io.create_dir_all(&dir) {
            return self.fail(RetrainError::SaveFailed {
                generation,
                attempts: 1,
                last: SnapshotError::Io(e),
            });
        }
        let path = dir.join(snapshot_file_name(generation));

        // Save with capped exponential backoff between attempts (jitter-free:
        // one supervisor per store, so there is no retry storm to decorrelate
        // and virtual-clock chaos digests stay stable).
        let max_attempts = self.cfg.max_save_attempts.max(1);
        let mut backoff = Backoff::new(self.cfg.backoff_initial, self.cfg.backoff_cap);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.hazard.strike("store.retrain.save");
            match save_snapshot_with(&*self.io, &path, &snapshot, &meta) {
                Ok(()) => break,
                Err(last) => {
                    if attempts >= max_attempts {
                        return self.fail(RetrainError::SaveFailed {
                            generation,
                            attempts,
                            last,
                        });
                    }
                    self.lock_inner().save_retries += 1;
                    self.clock.sleep(backoff.next_delay());
                }
            }
        }

        // Disk as source of truth: load the file back, validate it against
        // what we meant to write (probe: the window's first query), and
        // publish the *loaded* snapshot.
        self.hazard.strike("store.retrain.validate");
        let probe_query = window.first().map(|r| r.query.as_str());
        let probe_ctx: Vec<&str> = probe_query.into_iter().collect();
        match validate_snapshot_file(&*self.io, &path, &meta, Some((&snapshot, &probe_ctx))) {
            Ok(loaded) => {
                engine.publish(Arc::new(loaded));
                let keep = self.retrainer.config().keep.max(1);
                match rotate_snapshots_with(&*self.io, &dir, keep, Some(&path)) {
                    Ok(report) if report.errors.is_empty() => {}
                    Ok(report) => {
                        let mut inner = self.lock_inner();
                        inner.rotation_errors += 1;
                        inner.last_error = Some(format!("rotation: {}", report.errors.join("; ")));
                    }
                    Err(e) => {
                        let mut inner = self.lock_inner();
                        inner.rotation_errors += 1;
                        inner.last_error = Some(format!("rotation: {e}"));
                    }
                }
                self.succeed(generation, Some(path))
            }
            Err(cause) => self.quarantine_and_rollback(engine, generation, &path, cause),
        }
    }

    /// Validation failed: park the bad file under `*.quarantine`, roll the
    /// engine back to the newest good generation on disk, and record the
    /// failure.
    fn quarantine_and_rollback(
        &self,
        engine: &ServeEngine,
        generation: u64,
        path: &std::path::Path,
        cause: SnapshotError,
    ) -> StepOutcome {
        let mut cause = cause.to_string();
        if let Err(e) = quarantine_file(&*self.io, path) {
            // The rename itself failed (disk trouble on top of corruption):
            // the bad file stays at its canonical name, but rollback still
            // publishes a good model over it and the failure is recorded.
            cause = format!("{cause}; quarantine rename failed: {e}");
        }
        let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
        let (found, skipped) = newest_good_snapshot(&*self.io, dir);
        let rolled_back_to = found.map(|(good_path, good_snapshot, good_meta)| {
            engine.publish(Arc::new(good_snapshot));
            let mut inner = self.lock_inner();
            inner.rollbacks += 1;
            inner.last_good = Some((good_meta.generation, good_path));
            good_meta.generation
        });
        {
            let mut inner = self.lock_inner();
            inner.quarantined += 1;
            inner.rollback_files_skipped += skipped as u64;
        }
        self.fail(RetrainError::Quarantined {
            generation,
            cause,
            rolled_back_to,
        })
    }

    /// The blocking supervised loop: wait for buffered traffic (or
    /// shutdown), step, repeat; on shutdown, drain remaining traffic
    /// through one final step. The final health snapshot is returned.
    ///
    /// While the breaker is open the loop naps one poll interval per
    /// refused step instead of spinning.
    pub fn run(&self, engine: &ServeEngine) -> RetrainerHealth {
        loop {
            let stopping = self.retrainer.wait_for_work();
            if stopping && self.retrainer.pending() == 0 {
                break;
            }
            if let StepOutcome::BreakerOpen { .. } = self.step(engine) {
                if stopping {
                    break;
                }
                self.clock.sleep(self.retrainer.config().poll);
            }
            if stopping {
                break;
            }
        }
        self.health()
    }

    /// Spawn [`run`](Supervisor::run) as a background thread inside a
    /// caller-owned scope (the supervised analogue of
    /// [`Retrainer::spawn`]).
    pub fn spawn<'scope, 'env>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        engine: &'env ServeEngine,
    ) -> std::thread::ScopedJoinHandle<'scope, RetrainerHealth> {
        scope.spawn(move || self.run(engine))
    }
}

/// Render a panic payload as text (panics carry `String` or `&str`
/// payloads in practice; anything else gets a placeholder).
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retrain::RetrainConfig;
    use sqp_logsim::RawLogRecord;
    use sqp_serve::{EngineConfig, ModelSpec, TrainingConfig};

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn batch(prefix: &str, machine_base: u64) -> Vec<RawLogRecord> {
        (machine_base..machine_base + 6)
            .flat_map(|u| {
                [
                    rec(u, 100, "start"),
                    rec(u, 150, &format!("{prefix}::next")),
                ]
            })
            .collect()
    }

    fn training() -> TrainingConfig {
        TrainingConfig {
            model: ModelSpec::Adjacency,
            ..TrainingConfig::default()
        }
    }

    fn engine() -> ServeEngine {
        ServeEngine::new(
            Arc::new(ModelSnapshot::from_raw_logs(&batch("old", 0), &training())),
            EngineConfig::default(),
        )
    }

    #[test]
    fn idle_and_memory_only_steps() {
        let e = engine();
        let retrainer = Retrainer::new(
            RetrainConfig {
                training: training(),
                ..RetrainConfig::default()
            },
            Vec::new(),
        );
        let supervisor = Supervisor::new(&retrainer, SuperviseConfig::default());
        assert!(matches!(supervisor.step(&e), StepOutcome::Idle));
        retrainer.ingest_batch(batch("fresh", 100));
        let outcome = supervisor.step(&e);
        assert!(
            matches!(
                outcome,
                StepOutcome::Published {
                    generation: 1,
                    path: None
                }
            ),
            "{outcome:?}"
        );
        assert_eq!(e.generation(), 1);
        let health = supervisor.health();
        assert_eq!(health.retrains_ok, 1);
        assert_eq!(health.breaker, BreakerState::Closed);
        // No snapshot dir: last_good tracks only persisted generations.
        assert_eq!(health.last_good_generation, None);
    }

    #[test]
    fn persisted_step_publishes_the_loaded_file() {
        let dir = std::env::temp_dir().join(format!("sqp-supervise-ok-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = engine();
        let retrainer = Retrainer::new(
            RetrainConfig {
                training: training(),
                snapshot_dir: Some(dir.clone()),
                ..RetrainConfig::default()
            },
            batch("old", 0),
        );
        let supervisor = Supervisor::new(&retrainer, SuperviseConfig::default());
        retrainer.ingest_batch(batch("fresh", 100));
        let outcome = supervisor.step(&e);
        let StepOutcome::Published { generation, path } = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(generation, 1);
        assert!(path.as_ref().unwrap().exists());
        assert_eq!(supervisor.health().last_good_generation, Some(1));
        assert!(e
            .suggest_context(&["start"], 10)
            .iter()
            .any(|s| s.query == "fresh::next"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
