//! Snapshot container format v3 — one file that boots a serving process.
//!
//! A snapshot file bundles everything [`ModelSnapshot`] needs: the frozen
//! [`Interner`], the trained model behind its
//! [`ModelKind`] tag, and lifecycle metadata
//! ([`SnapshotMeta`]). The layout is a length-prefixed **section table** —
//! the loader learns every section's size before touching its payload, so
//! it pre-sizes the interner tables and model arenas up front and never
//! grows a structure mid-load — followed by the section payloads and a
//! trailing whole-file FNV-1a 64 checksum.
//!
//! The byte-level specification, with a worked hexdump of a toy snapshot,
//! lives in the repository's `FORMAT.md`; a conformance test
//! (`tests/format_spec.rs`) parses a freshly written snapshot using only
//! the offsets and sizes stated there.
//!
//! Writes are atomic-by-rename: [`save_snapshot`] writes `<path>.tmp` and
//! renames over the target, so a reader (or a crash) can never observe a
//! half-written snapshot at the published path.

use crate::error::SnapshotError;
use sqp_common::bytes::{Bytes, BytesMut};
use sqp_common::Interner;
use sqp_core::persist::{model_from_bytes, model_to_bytes, ModelKind};
use sqp_serve::ModelSnapshot;
use std::path::Path;

/// First four bytes of every snapshot file.
pub const MAGIC: [u8; 4] = *b"SQPS";
/// Container version this build writes and reads.
pub const FORMAT_VERSION: u32 = 3;
/// Size of the fixed header: magic + version + section count.
pub const HEADER_LEN: usize = 12;
/// Size of one section-table entry: id `u32`, offset `u64`, length `u64`.
pub const SECTION_ENTRY_LEN: usize = 20;
/// Size of the trailing checksum.
pub const CHECKSUM_LEN: usize = 8;

/// Section id of the metadata block.
pub const SECTION_META: u32 = 1;
/// Section id of the interner block.
pub const SECTION_INTERNER: u32 = 2;
/// Section id of the model block.
pub const SECTION_MODEL: u32 = 3;
/// Sections every v3 snapshot carries, in file order.
pub const SECTION_IDS: [u32; 3] = [SECTION_META, SECTION_INTERNER, SECTION_MODEL];

/// Byte length of the META section payload (three `u64` fields).
pub const META_SECTION_LEN: usize = 24;

/// Lifecycle metadata stored alongside the model.
///
/// `trained_sessions` duplicates what the reconstructed
/// [`ModelSnapshot`] reports, but `generation` and `source_records` exist
/// *only* here: they let an operator (or the retrainer's rotation logic)
/// reason about a directory of snapshots without loading any model bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Which retrain produced this snapshot (0 = initial offline build;
    /// the retrainer increments per publish).
    pub generation: u64,
    /// Weighted session mass the model was trained on.
    pub trained_sessions: u64,
    /// Raw log records in the training window that produced the model.
    pub source_records: u64,
}

impl SnapshotMeta {
    /// Metadata for `snapshot` at `generation`, trained from
    /// `source_records` raw records.
    pub fn describe(snapshot: &ModelSnapshot, generation: u64, source_records: u64) -> Self {
        Self {
            generation,
            trained_sessions: snapshot.trained_sessions(),
            source_records,
        }
    }
}

/// FNV-1a 64 over `bytes` — the snapshot checksum. Stated in full in
/// `FORMAT.md` so independent tooling can verify files: start from the
/// offset basis `0xcbf29ce484222325`, and for each byte XOR it in, then
/// multiply by the prime `0x100000001b3` (wrapping).
pub fn checksum_fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    bytes
        .iter()
        .fold(OFFSET_BASIS, |h, &b| (h ^ b as u64).wrapping_mul(PRIME))
}

/// Serialize a snapshot + metadata into the v3 container bytes.
///
/// Fails only when the model behind the snapshot has no persistable form
/// (see [`ModelKind`]). Output is deterministic: identical snapshots
/// produce bit-identical files.
pub fn snapshot_to_bytes(
    snapshot: &ModelSnapshot,
    meta: &SnapshotMeta,
) -> Result<Vec<u8>, SnapshotError> {
    // META payload.
    let mut meta_buf = BytesMut::with_capacity(META_SECTION_LEN);
    meta_buf.put_u64_le(meta.generation);
    meta_buf.put_u64_le(meta.trained_sessions);
    meta_buf.put_u64_le(meta.source_records);
    let meta_bytes = meta_buf.freeze();

    // INTERNER payload.
    let mut interner_buf = BytesMut::with_capacity(16 + snapshot.interner().bytes_resident() * 2);
    snapshot.interner().serialize_into(&mut interner_buf);
    let interner_bytes = interner_buf.freeze();

    // MODEL payload: kind tag, then the model's own codec.
    let (kind, payload) =
        model_to_bytes(snapshot.model()).map_err(SnapshotError::UnsupportedModel)?;
    let mut model_buf = BytesMut::with_capacity(4 + payload.len());
    model_buf.put_u32_le(kind.code());
    model_buf.put_slice(payload.as_slice());
    let model_bytes = model_buf.freeze();

    let sections: [(u32, &Bytes); 3] = [
        (SECTION_META, &meta_bytes),
        (SECTION_INTERNER, &interner_bytes),
        (SECTION_MODEL, &model_bytes),
    ];

    let table_len = sections.len() * SECTION_ENTRY_LEN;
    let payload_len: usize = sections.iter().map(|(_, b)| b.len()).sum();
    let total = HEADER_LEN + table_len + payload_len + CHECKSUM_LEN;
    let mut out = BytesMut::with_capacity(total);
    out.put_slice(&MAGIC);
    out.put_u32_le(FORMAT_VERSION);
    out.put_u32_le(sections.len() as u32);
    let mut offset = (HEADER_LEN + table_len) as u64;
    for (id, bytes) in &sections {
        out.put_u32_le(*id);
        out.put_u64_le(offset);
        out.put_u64_le(bytes.len() as u64);
        offset += bytes.len() as u64;
    }
    for (_, bytes) in &sections {
        out.put_slice(bytes.as_slice());
    }
    let sum = checksum_fnv1a(out.as_slice());
    out.put_u64_le(sum);
    let raw = out.into_vec();
    debug_assert_eq!(raw.len(), total);
    Ok(raw)
}

/// One parsed section-table entry (exposed for format tooling and the
/// `FORMAT.md` conformance test).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section id (one of [`SECTION_IDS`]).
    pub id: u32,
    /// Absolute byte offset of the section payload within the file.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// Validate the fixed header and checksum of `raw` and parse the section
/// table, without touching any payload. The cheap integrity gate every
/// load runs first; exposed so ops tooling can inspect files.
pub fn parse_section_table(raw: &[u8]) -> Result<Vec<SectionEntry>, SnapshotError> {
    if raw.len() < 4 || raw[0..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if raw.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::Corrupt(format!(
            "file is {} bytes, shorter than header + checksum",
            raw.len()
        )));
    }
    // The `try_into().unwrap()`s below are on fixed-width slices whose
    // length is guaranteed by the bounds checks directly above them —
    // `&raw[a..a + 4]` is always exactly 4 bytes — so they cannot fail.
    let version = u32::from_le_bytes(raw[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let body = &raw[..raw.len() - CHECKSUM_LEN];
    let stored = u64::from_le_bytes(raw[raw.len() - CHECKSUM_LEN..].try_into().unwrap());
    let computed = checksum_fnv1a(body);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let n_sections = u32::from_le_bytes(raw[8..12].try_into().unwrap()) as usize;
    let table_end = HEADER_LEN
        .checked_add(
            n_sections
                .checked_mul(SECTION_ENTRY_LEN)
                .ok_or_else(|| SnapshotError::Corrupt("section count overflows".into()))?,
        )
        .ok_or_else(|| SnapshotError::Corrupt("section table overflows".into()))?;
    if table_end > body.len() {
        return Err(SnapshotError::Corrupt(format!(
            "section table ({n_sections} entries) exceeds file body"
        )));
    }
    let mut entries = Vec::with_capacity(n_sections);
    let mut cursor = HEADER_LEN;
    let mut expected_offset = table_end;
    for i in 0..n_sections {
        let id = u32::from_le_bytes(raw[cursor..cursor + 4].try_into().unwrap());
        let offset = u64::from_le_bytes(raw[cursor + 4..cursor + 12].try_into().unwrap());
        let len = u64::from_le_bytes(raw[cursor + 12..cursor + 20].try_into().unwrap());
        cursor += SECTION_ENTRY_LEN;
        let offset: usize = offset
            .try_into()
            .map_err(|_| SnapshotError::Corrupt(format!("section {i} offset overflows")))?;
        let len: usize = len
            .try_into()
            .map_err(|_| SnapshotError::Corrupt(format!("section {i} length overflows")))?;
        // Sections must tile the body contiguously, in table order — the
        // layout the writer produces and FORMAT.md specifies.
        if offset != expected_offset {
            return Err(SnapshotError::Corrupt(format!(
                "section {i} starts at {offset}, expected {expected_offset}"
            )));
        }
        expected_offset = offset
            .checked_add(len)
            .ok_or_else(|| SnapshotError::Corrupt(format!("section {i} extent overflows")))?;
        if expected_offset > body.len() {
            return Err(SnapshotError::Corrupt(format!(
                "section {i} (offset {offset}, len {len}) exceeds file body"
            )));
        }
        entries.push(SectionEntry { id, offset, len });
    }
    if expected_offset != body.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} unaccounted bytes after the last section",
            body.len() - expected_offset
        )));
    }
    Ok(entries)
}

fn required_section(
    entries: &[SectionEntry],
    id: u32,
    label: &str,
) -> Result<SectionEntry, SnapshotError> {
    let mut found = entries.iter().filter(|e| e.id == id);
    let entry = found
        .next()
        .copied()
        .ok_or_else(|| SnapshotError::Corrupt(format!("missing {label} section (id {id})")))?;
    if found.next().is_some() {
        return Err(SnapshotError::Corrupt(format!(
            "duplicate {label} section (id {id})"
        )));
    }
    Ok(entry)
}

/// Reconstruct a snapshot and its metadata from v3 container bytes.
///
/// Integrity order: magic → version → whole-file checksum → section table
/// → payloads. Any violation returns the matching [`SnapshotError`]
/// variant; no code path panics and no partial snapshot escapes.
pub fn snapshot_from_bytes(raw: &[u8]) -> Result<(ModelSnapshot, SnapshotMeta), SnapshotError> {
    let entries = parse_section_table(raw)?;
    // One shared copy of the file; the interner and model payloads below
    // are zero-copy cursor views into it.
    let shared = Bytes::from(raw.to_vec());

    // META.
    let meta_entry = required_section(&entries, SECTION_META, "meta")?;
    if meta_entry.len != META_SECTION_LEN {
        return Err(SnapshotError::Corrupt(format!(
            "meta section is {} bytes, expected {META_SECTION_LEN}",
            meta_entry.len
        )));
    }
    let at = meta_entry.offset;
    // Fixed-width unwraps: the section table validated every section lies
    // inside the body and META_SECTION_LEN covers all three fields.
    let meta = SnapshotMeta {
        generation: u64::from_le_bytes(raw[at..at + 8].try_into().unwrap()),
        trained_sessions: u64::from_le_bytes(raw[at + 8..at + 16].try_into().unwrap()),
        source_records: u64::from_le_bytes(raw[at + 16..at + 24].try_into().unwrap()),
    };

    // INTERNER.
    let interner_entry = required_section(&entries, SECTION_INTERNER, "interner")?;
    let mut interner_bytes =
        shared.slice(interner_entry.offset..interner_entry.offset + interner_entry.len);
    let interner = Interner::deserialize(&mut interner_bytes)
        .map_err(|e| SnapshotError::Corrupt(format!("interner block: {e}")))?;
    if !interner_bytes.is_empty() {
        return Err(SnapshotError::Corrupt(format!(
            "interner block has {} trailing bytes",
            interner_bytes.remaining()
        )));
    }

    // MODEL.
    let model_entry = required_section(&entries, SECTION_MODEL, "model")?;
    if model_entry.len < 4 {
        return Err(SnapshotError::Corrupt(
            "model section shorter than its kind tag".into(),
        ));
    }
    let at = model_entry.offset;
    // Fixed-width unwrap: `model_entry.len >= 4` was just checked and the
    // section table validated the section lies inside the body.
    let code = u32::from_le_bytes(raw[at..at + 4].try_into().unwrap());
    let kind = ModelKind::from_code(code)
        .ok_or_else(|| SnapshotError::Corrupt(format!("unknown model kind tag {code}")))?;
    let payload = shared.slice(at + 4..at + model_entry.len);
    let model = model_from_bytes(kind, payload)
        .map_err(|e| SnapshotError::Corrupt(format!("{} payload: {e}", kind.label())))?;

    Ok((
        ModelSnapshot::from_parts(interner, model, meta.trained_sessions),
        meta,
    ))
}

/// Write `snapshot` to `path` atomically (via `<path>.tmp` + rename).
///
/// # Examples
///
/// ```
/// use sqp_logsim::RawLogRecord;
/// use sqp_serve::{ModelSnapshot, ModelSpec, TrainingConfig};
/// use sqp_store::{load_snapshot, save_snapshot, SnapshotMeta};
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let mut records = Vec::new();
/// for u in 0..5 {
///     records.push(rec(u, 100, "rust"));
///     records.push(rec(u, 160, "rust atomics"));
/// }
/// let cfg = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
/// let trained = ModelSnapshot::from_raw_logs(&records, &cfg);
/// let meta = SnapshotMeta::describe(&trained, 0, records.len() as u64);
///
/// let path = std::env::temp_dir().join(format!("sqp-doc-save-{}.sqps", std::process::id()));
/// save_snapshot(&path, &trained, &meta).unwrap();
///
/// // A fresh process cold-starts from the file alone.
/// let (restored, restored_meta) = load_snapshot(&path).unwrap();
/// assert_eq!(restored.suggest(&["rust"], 1)[0].query, "rust atomics");
/// assert_eq!(restored_meta, meta);
/// # std::fs::remove_file(&path).unwrap();
/// ```
pub fn save_snapshot(
    path: impl AsRef<Path>,
    snapshot: &ModelSnapshot,
    meta: &SnapshotMeta,
) -> Result<(), SnapshotError> {
    save_snapshot_with(&sqp_common::fsio::RealFs, path.as_ref(), snapshot, meta)
}

/// [`save_snapshot`] through an explicit [`FsIo`](sqp_common::fsio::FsIo)
/// seam — the variant the supervised retrain loop uses so fault-injection
/// harnesses can fail or corrupt the write deterministically. Atomicity is
/// the seam's contract ([`FsIo::write_atomic`](sqp_common::fsio::FsIo)).
pub fn save_snapshot_with(
    io: &dyn sqp_common::fsio::FsIo,
    path: &Path,
    snapshot: &ModelSnapshot,
    meta: &SnapshotMeta,
) -> Result<(), SnapshotError> {
    let raw = snapshot_to_bytes(snapshot, meta)?;
    io.write_atomic(path, &raw)?;
    Ok(())
}

/// Load a snapshot file written by [`save_snapshot`].
///
/// # Examples
///
/// ```
/// use sqp_logsim::RawLogRecord;
/// use sqp_serve::{ModelSnapshot, ModelSpec, TrainingConfig};
/// use sqp_store::{load_snapshot, save_snapshot, SnapshotError, SnapshotMeta};
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let records: Vec<_> = (0..4)
///     .flat_map(|u| [rec(u, 100, "weather"), rec(u, 150, "weather radar")])
///     .collect();
/// let cfg = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
/// let trained = ModelSnapshot::from_raw_logs(&records, &cfg);
///
/// let path = std::env::temp_dir().join(format!("sqp-doc-load-{}.sqps", std::process::id()));
/// save_snapshot(&path, &trained, &SnapshotMeta::describe(&trained, 7, 8)).unwrap();
/// let (warm, meta) = load_snapshot(&path).unwrap();
/// assert_eq!(meta.generation, 7);
/// assert_eq!(warm.model_name(), trained.model_name());
///
/// // Unreadable files are typed errors, never panics.
/// assert!(matches!(
///     load_snapshot("/nonexistent/snapshot.sqps"),
///     Err(SnapshotError::Io(_))
/// ));
/// # std::fs::remove_file(&path).unwrap();
/// ```
pub fn load_snapshot(
    path: impl AsRef<Path>,
) -> Result<(ModelSnapshot, SnapshotMeta), SnapshotError> {
    load_snapshot_with(&sqp_common::fsio::RealFs, path.as_ref())
}

/// [`load_snapshot`] through an explicit [`FsIo`](sqp_common::fsio::FsIo)
/// seam, so fault-injection harnesses can fail or truncate the read. A
/// short read surfaces as the same typed error a truncated file would.
pub fn load_snapshot_with(
    io: &dyn sqp_common::fsio::FsIo,
    path: &Path,
) -> Result<(ModelSnapshot, SnapshotMeta), SnapshotError> {
    let raw = io.read(path)?;
    snapshot_from_bytes(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_core::VmmConfig;
    use sqp_logsim::RawLogRecord;
    use sqp_serve::{ModelSpec, TrainingConfig};

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn toy_records() -> Vec<RawLogRecord> {
        let mut records = Vec::new();
        for u in 0..6 {
            records.push(rec(u, 100, "a"));
            records.push(rec(u, 160, "b"));
        }
        records
    }

    fn toy_snapshot(model: ModelSpec) -> ModelSnapshot {
        ModelSnapshot::from_raw_logs(
            &toy_records(),
            &TrainingConfig {
                model,
                ..TrainingConfig::default()
            },
        )
    }

    #[test]
    fn bytes_roundtrip_all_supported_specs() {
        for spec in [
            ModelSpec::Adjacency,
            ModelSpec::Cooccurrence,
            ModelSpec::NGram,
            ModelSpec::Backoff(sqp_core::BackoffConfig::default()),
            ModelSpec::Vmm(VmmConfig::with_epsilon(0.05)),
        ] {
            let snapshot = toy_snapshot(spec);
            let meta = SnapshotMeta::describe(&snapshot, 3, 12);
            let raw = snapshot_to_bytes(&snapshot, &meta).unwrap();
            let (restored, restored_meta) = snapshot_from_bytes(&raw).unwrap();
            assert_eq!(restored_meta, meta);
            assert_eq!(restored.model_name(), snapshot.model_name());
            assert_eq!(restored.vocabulary_size(), snapshot.vocabulary_size());
            assert_eq!(restored.suggest(&["a"], 3), snapshot.suggest(&["a"], 3));
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = snapshot_to_bytes(
            &toy_snapshot(ModelSpec::Adjacency),
            &SnapshotMeta::default(),
        )
        .unwrap();
        let b = snapshot_to_bytes(
            &toy_snapshot(ModelSpec::Adjacency),
            &SnapshotMeta::default(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mvmm_is_a_save_time_error() {
        let snapshot = toy_snapshot(ModelSpec::Mvmm(sqp_core::MvmmConfig::small()));
        let err = snapshot_to_bytes(&snapshot, &SnapshotMeta::default()).unwrap_err();
        assert!(matches!(err, SnapshotError::UnsupportedModel(_)), "{err}");
    }

    #[test]
    fn every_truncation_point_fails_with_typed_error() {
        let snapshot = toy_snapshot(ModelSpec::Adjacency);
        let raw = snapshot_to_bytes(&snapshot, &SnapshotMeta::default()).unwrap();
        for cut in 0..raw.len() {
            match snapshot_from_bytes(&raw[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncation at {cut}/{} loaded successfully", raw.len()),
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_fails() {
        let snapshot = toy_snapshot(ModelSpec::Adjacency);
        let raw = snapshot_to_bytes(&snapshot, &SnapshotMeta::default()).unwrap();
        for i in 0..raw.len() {
            let mut bad = raw.clone();
            bad[i] ^= 0xA5;
            assert!(
                snapshot_from_bytes(&bad).is_err(),
                "flip at byte {i} loaded successfully"
            );
        }
    }

    #[test]
    fn error_variants_match_the_failure() {
        let snapshot = toy_snapshot(ModelSpec::Adjacency);
        let raw = snapshot_to_bytes(&snapshot, &SnapshotMeta::default()).unwrap();

        assert!(matches!(
            snapshot_from_bytes(b"NOPE").unwrap_err(),
            SnapshotError::BadMagic
        ));
        let mut wrong_version = raw.clone();
        wrong_version[4] = 9;
        // Version is checked before the checksum so operators see the real
        // cause, not a checksum side effect.
        assert!(matches!(
            snapshot_from_bytes(&wrong_version).unwrap_err(),
            SnapshotError::UnsupportedVersion(9)
        ));
        let mut flipped = raw.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(matches!(
            snapshot_from_bytes(&flipped).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn file_roundtrip_and_atomic_tmp_cleanup() {
        let snapshot = toy_snapshot(ModelSpec::Vmm(VmmConfig::with_epsilon(0.0)));
        let meta = SnapshotMeta::describe(&snapshot, 1, 12);
        let dir = std::env::temp_dir().join(format!("sqp-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.sqps");
        save_snapshot(&path, &snapshot, &meta).unwrap();
        assert!(!dir.join("snap.sqps.tmp").exists(), "tmp file left behind");
        let (restored, restored_meta) = load_snapshot(&path).unwrap();
        assert_eq!(restored_meta, meta);
        assert_eq!(restored.suggest(&["a"], 1), snapshot.suggest(&["a"], 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn section_table_is_inspectable_without_payload_parsing() {
        let snapshot = toy_snapshot(ModelSpec::Adjacency);
        let raw = snapshot_to_bytes(&snapshot, &SnapshotMeta::default()).unwrap();
        let entries = parse_section_table(&raw).unwrap();
        assert_eq!(
            entries.iter().map(|e| e.id).collect::<Vec<_>>(),
            SECTION_IDS.to_vec()
        );
        assert_eq!(entries[0].offset, HEADER_LEN + 3 * SECTION_ENTRY_LEN);
        assert_eq!(entries[0].len, META_SECTION_LEN);
        let last = entries.last().unwrap();
        assert_eq!(last.offset + last.len, raw.len() - CHECKSUM_LEN);
    }
}
