//! The typed failure surface of the snapshot store.
//!
//! Every way a snapshot file can be unusable maps to one [`SnapshotError`]
//! variant, and **nothing in the load path panics**: a truncated, corrupted,
//! wrong-version, or wrong-format file produces an `Err` and never a partial
//! [`ModelSnapshot`](sqp_serve::ModelSnapshot). The umbrella test suite
//! sweeps every possible truncation point and every single-byte corruption
//! of a snapshot to hold that contract.

use std::fmt;

/// Why a snapshot could not be saved or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the `SQPS` snapshot magic — it is not a
    /// snapshot at all (or is truncated inside the first four bytes).
    BadMagic,
    /// The file declares a container version this build cannot read.
    UnsupportedVersion(u32),
    /// The whole-file checksum does not match: bytes were corrupted or the
    /// file was truncated after the header.
    ChecksumMismatch {
        /// Checksum stored in the file's trailing eight bytes.
        stored: u64,
        /// Checksum recomputed over the file contents.
        computed: u64,
    },
    /// Structurally invalid contents (bad section table, short section,
    /// undecodable payload). The message pinpoints the first violation.
    Corrupt(String),
    /// The in-memory model behind the snapshot has no persistable form
    /// (e.g. the MVMM mixture) — a save-time error only.
    UnsupportedModel(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => {
                write!(f, "bad magic — not a snapshot file (expected \"SQPS\")")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads v3)")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: file says {stored:#018x}, contents hash to \
                 {computed:#018x} (corruption or truncation)"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::UnsupportedModel(msg) => write!(f, "unsupported model: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Why one supervised retrain step failed.
///
/// Produced by the supervised loop
/// ([`Supervisor::step`](crate::Supervisor::step)); every variant leaves
/// the serving engine on its last good snapshot — a failed step degrades
/// freshness, never correctness.
#[derive(Debug)]
pub enum RetrainError {
    /// The training computation panicked; the payload text is preserved.
    /// The drained window stays in the sliding corpus, so the next step
    /// retries on the same (plus newer) traffic.
    TrainingPanicked(String),
    /// The snapshot file could not be written after every configured
    /// retry. The reserved generation number is burned (never reused).
    SaveFailed {
        /// The generation whose save was abandoned.
        generation: u64,
        /// Write attempts made (1 + configured retries).
        attempts: u32,
        /// The final attempt's error.
        last: SnapshotError,
    },
    /// The freshly written file failed post-save validation and was
    /// renamed to `*.quarantine`; serving rolled back to the newest good
    /// generation still on disk (if any).
    Quarantined {
        /// The generation that was quarantined.
        generation: u64,
        /// Why validation rejected the file.
        cause: String,
        /// Generation rolled back to, when a good file existed.
        rolled_back_to: Option<u64>,
    },
}

impl fmt::Display for RetrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrainError::TrainingPanicked(payload) => {
                write!(f, "retrain training thread panicked: {payload}")
            }
            RetrainError::SaveFailed {
                generation,
                attempts,
                last,
            } => write!(
                f,
                "saving snapshot generation {generation} failed after {attempts} attempts: {last}"
            ),
            RetrainError::Quarantined {
                generation,
                cause,
                rolled_back_to,
            } => {
                write!(f, "snapshot generation {generation} quarantined ({cause})")?;
                match rolled_back_to {
                    Some(g) => write!(f, "; rolled back to generation {g}"),
                    None => write!(f, "; no good generation on disk to roll back to"),
                }
            }
        }
    }
}

impl std::error::Error for RetrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetrainError::SaveFailed { last, .. } => Some(last),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrain_error_display_is_actionable() {
        let e = RetrainError::Quarantined {
            generation: 9,
            cause: "checksum mismatch".into(),
            rolled_back_to: Some(8),
        };
        let msg = e.to_string();
        assert!(msg.contains("generation 9") && msg.contains("rolled back to generation 8"));
        let e = RetrainError::SaveFailed {
            generation: 4,
            attempts: 3,
            last: SnapshotError::BadMagic,
        };
        assert!(e.to_string().contains("after 3 attempts"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn display_is_actionable() {
        let e = SnapshotError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("0x0000000000000001"), "{msg}");
        assert!(SnapshotError::BadMagic.to_string().contains("SQPS"));
        assert!(SnapshotError::UnsupportedVersion(9)
            .to_string()
            .contains("9"));
    }

    #[test]
    fn io_errors_chain_as_source() {
        use std::error::Error;
        let e: SnapshotError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
