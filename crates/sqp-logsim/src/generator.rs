//! Session and raw-log generation.
//!
//! A session is a random walk over the topic forest whose steps are drawn
//! from the seven reformulation patterns. Three mechanisms shape the corpus
//! statistics the paper reports:
//!
//! 1. **Zipf intent popularity** — a permuted Zipf over topics makes a few
//!    intents extremely common (head queries) and most rare (tail).
//! 2. **Canonical walk variants** — each intent owns a small set of walks
//!    whose RNG is seeded by `(intent, variant)`; most sessions replay one of
//!    them. Popular intents therefore yield *identical* sessions over and
//!    over, which is exactly what produces the power-law aggregated-session
//!    frequency spectrum of Figure 6.
//! 3. **Shared canonical walks across epochs** — the walk seed does not
//!    depend on the epoch, so the test month re-issues many training
//!    sessions (plus fresh walks and test-only topics), giving the partial
//!    train/test overlap that the coverage experiments need.

use crate::config::SimConfig;
use crate::patterns::PatternType;
use crate::record::{Click, RawLogRecord};
use crate::vocab::{TopicId, Vocabulary};
use crate::zipf::CumulativeSampler;
use sqp_common::hash::fx_hash_one;
use sqp_common::rng::{Rng, StdRng};
use sqp_common::FxHashMap;

/// A generated session together with its ground-truth annotations.
#[derive(Clone, Debug)]
pub struct GeneratedSession {
    /// Machine (user) that issued the session.
    pub machine_id: u64,
    /// Timestamp of the first query.
    pub start_time: u64,
    /// Query surfaces in order.
    pub queries: Vec<String>,
    /// The intent topic the walk started from.
    pub intent: TopicId,
    /// Ground-truth pattern label of each transition
    /// (`labels.len() == queries.len() - 1`).
    pub labels: Vec<PatternType>,
}

impl GeneratedSession {
    /// Session-level pattern label: the label of the first transition (the
    /// convention we use when regenerating Figure 1). `None` for single-query
    /// sessions.
    pub fn dominant_label(&self) -> Option<PatternType> {
        self.labels.first().copied()
    }
}

/// Ground truth retained alongside the raw logs (vocabulary relations drive
/// the user-study oracle; session labels validate the pattern classifier).
#[derive(Clone, Debug)]
pub struct SimTruth {
    /// The vocabulary forest used by both epochs.
    pub vocabulary: Vocabulary,
    /// Training-epoch sessions with annotations.
    pub train_sessions: Vec<GeneratedSession>,
    /// Test-epoch sessions with annotations.
    pub test_sessions: Vec<GeneratedSession>,
}

/// Output of [`generate`]: raw logs for both epochs plus ground truth.
#[derive(Clone, Debug)]
pub struct SimulatedLogs {
    /// Raw training-epoch records (the paper's 120 days), time-ordered.
    pub train: Vec<RawLogRecord>,
    /// Raw test-epoch records (the paper's following 30 days), time-ordered.
    pub test: Vec<RawLogRecord>,
    /// Generator ground truth.
    pub truth: SimTruth,
}

const DAY: u64 = 86_400;
/// Training epoch length: the paper uses the first 120 days of its log.
pub const TRAIN_EPOCH_DAYS: u64 = 120;
/// Test epoch length: the following 30 days.
pub const TEST_EPOCH_DAYS: u64 = 30;

struct Samplers {
    length: CumulativeSampler,
    /// Full seven-pattern mixture, used for the first transition.
    pattern_first: CumulativeSampler,
    /// Mixture for later transitions: spelling-change mass is redistributed,
    /// because a typo+fix pair is modelled at the session start (the paper's
    /// own examples — "goggle ⇒ google", "youtub ⇒ youtube" — are openers).
    pattern_rest: CumulativeSampler,
    topic_zipf: CumulativeSampler,
    variant_zipf: CumulativeSampler,
    /// Zipf-rank → topic mapping (a seeded permutation of train topics).
    topic_order: Vec<TopicId>,
    /// Zipf over the test-only topics (novel queries are head-heavy too —
    /// a breaking news topic is novel *and* popular; concentration lets
    /// novel sessions survive the frequency-based data reduction).
    novelty_zipf: Option<CumulativeSampler>,
    novelty_order: Vec<TopicId>,
}

impl Samplers {
    fn build(vocab: &Vocabulary, cfg: &SimConfig, rng: &mut StdRng) -> Self {
        let mut rest = cfg.session.pattern_weights;
        rest[PatternType::SpellingChange.index()] = 0.0;

        let mut topic_order: Vec<TopicId> = vocab.train_topics().to_vec();
        // Fisher–Yates with the master rng so popularity is independent of
        // tree construction order.
        for i in (1..topic_order.len()).rev() {
            let j = rng.random_range(0..=i);
            topic_order.swap(i, j);
        }

        let mut novelty_order: Vec<TopicId> = vocab.test_only_topics().to_vec();
        for i in (1..novelty_order.len()).rev() {
            let j = rng.random_range(0..=i);
            novelty_order.swap(i, j);
        }
        let novelty_zipf = if novelty_order.is_empty() {
            None
        } else {
            Some(CumulativeSampler::zipf(
                novelty_order.len(),
                cfg.session.zipf_theta,
            ))
        };

        Samplers {
            length: CumulativeSampler::from_weights(&cfg.session.length_weights),
            pattern_first: CumulativeSampler::from_weights(&cfg.session.pattern_weights),
            pattern_rest: CumulativeSampler::from_weights(&rest),
            topic_zipf: CumulativeSampler::zipf(topic_order.len(), cfg.session.zipf_theta),
            variant_zipf: CumulativeSampler::zipf(
                cfg.session.walk_variants.max(1),
                cfg.session.variant_theta,
            ),
            topic_order,
            novelty_zipf,
            novelty_order,
        }
    }
}

fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>();
    -mean * (1.0 - u).ln()
}

/// Walk state: which topic we are on and which surface form we last emitted.
struct WalkState {
    topic: TopicId,
    surface: String,
}

fn apply_pattern(
    vocab: &Vocabulary,
    state: &WalkState,
    pattern: PatternType,
    pool: &[TopicId],
    rng: &mut StdRng,
) -> Option<(TopicId, String)> {
    match pattern {
        PatternType::RepeatedQuery => Some((state.topic, state.surface.clone())),
        PatternType::Specialization => {
            let children = vocab.children(state.topic);
            if children.is_empty() {
                None
            } else {
                let c = children[rng.random_range(0..children.len())];
                Some((c, vocab.canonical(c).to_owned()))
            }
        }
        PatternType::Generalization => vocab
            .parent(state.topic)
            .map(|p| (p, vocab.canonical(p).to_owned())),
        PatternType::ParallelMovement => {
            let sibs = vocab.siblings(state.topic);
            if sibs.is_empty() {
                None
            } else {
                let s = sibs[rng.random_range(0..sibs.len())];
                Some((s, vocab.canonical(s).to_owned()))
            }
        }
        PatternType::SynonymSubstitution => vocab.synonym(state.topic).map(|alt| {
            let next = if state.surface == vocab.canonical(state.topic) {
                alt.to_owned()
            } else {
                vocab.canonical(state.topic).to_owned()
            };
            (state.topic, next)
        }),
        PatternType::Other => {
            // Unrelated jump: a random topic from a different tree.
            for _ in 0..8 {
                let t = pool[rng.random_range(0..pool.len())];
                if !vocab.same_root(t, state.topic) {
                    return Some((t, vocab.canonical(t).to_owned()));
                }
            }
            None
        }
        // Spelling change is handled specially by the walk (it rewrites the
        // previous query into a typo); it is never applied as a forward step.
        PatternType::SpellingChange => None,
    }
}

/// Fallback preference when a sampled pattern is inapplicable at the current
/// node. Chains are pattern-specific so the realized mixture keeps the
/// configured shape: order-sensitive draws fall back to order-sensitive
/// moves (a specialization at a leaf becomes a generalization, not a random
/// jump), and `RepeatedQuery` — always applicable — terminates every chain.
fn fallback_chain(p: PatternType) -> &'static [PatternType] {
    use PatternType::*;
    match p {
        Specialization => &[Generalization, ParallelMovement, Other, RepeatedQuery],
        Generalization => &[Specialization, ParallelMovement, Other, RepeatedQuery],
        ParallelMovement => &[Specialization, Generalization, Other, RepeatedQuery],
        SynonymSubstitution => &[RepeatedQuery],
        Other => &[RepeatedQuery],
        RepeatedQuery | SpellingChange => &[RepeatedQuery],
    }
}

/// One scripted or noisy transition from `state`: sample a pattern with
/// `rng`, apply it (with fallbacks), return `(topic, surface, label)`.
fn walk_step(
    vocab: &Vocabulary,
    state: &WalkState,
    samplers: &Samplers,
    pool: &[TopicId],
    rng: &mut StdRng,
) -> (TopicId, String, PatternType) {
    let sampled = PatternType::ALL[samplers.pattern_rest.sample(rng)];
    if let Some((t, s)) = apply_pattern(vocab, state, sampled, pool, rng) {
        return (t, s, sampled);
    }
    for &fb in fallback_chain(sampled) {
        if let Some((t, s)) = apply_pattern(vocab, state, fb, pool, rng) {
            return (t, s, fb);
        }
    }
    unreachable!("RepeatedQuery is always applicable");
}

/// Generate a session of exactly `len` queries.
///
/// `rng` drives the scripted walk (seeded per canonical variant, so walks
/// sharing `(intent, variant)` share query *prefixes* across different
/// lengths). `noise` optionally injects per-transition deviations drawn from
/// an independent stream, leaving the scripted stream untouched for
/// noiseless replays.
fn gen_walk(
    vocab: &Vocabulary,
    intent: TopicId,
    len: usize,
    samplers: &Samplers,
    pool: &[TopicId],
    rng: &mut StdRng,
    mut noise: Option<(&mut StdRng, f64)>,
) -> (Vec<String>, Vec<PatternType>) {
    let mut queries = vec![vocab.canonical(intent).to_owned()];
    let mut labels = Vec::with_capacity(len.saturating_sub(1));
    let mut state = WalkState {
        topic: intent,
        surface: queries[0].clone(),
    };

    for step in 0..len.saturating_sub(1) {
        if step == 0 {
            // The opener may be a typo + fix pair (the paper's own spelling
            // examples are session openers: "goggle ⇒ google").
            let sampled = PatternType::ALL[samplers.pattern_first.sample(rng)];
            if sampled == PatternType::SpellingChange {
                let fixed = state.surface.clone();
                queries[0] = vocab.misspell(&fixed, rng);
                queries.push(fixed);
                labels.push(PatternType::SpellingChange);
                continue; // state unchanged: back on the canonical surface
            }
            // Not a spelling opener: apply the sampled pattern directly
            // (sharing the fallback machinery of walk_step).
            let (topic, surface, label) =
                if let Some((t, s)) = apply_pattern(vocab, &state, sampled, pool, rng) {
                    (t, s, sampled)
                } else {
                    let mut found = None;
                    for &fb in fallback_chain(sampled) {
                        if let Some((t, s)) = apply_pattern(vocab, &state, fb, pool, rng) {
                            found = Some((t, s, fb));
                            break;
                        }
                    }
                    found.expect("RepeatedQuery is always applicable")
                };
            queries.push(surface.clone());
            labels.push(label);
            state = WalkState { topic, surface };
            continue;
        }

        // Later transitions: scripted, unless the noise stream fires.
        let noisy = match &mut noise {
            Some((nrng, p)) => nrng.random_bool(*p),
            None => false,
        };
        let (topic, surface, label) = if noisy {
            let (nrng, _) = noise.as_mut().unwrap();
            walk_step(vocab, &state, samplers, pool, nrng)
        } else {
            walk_step(vocab, &state, samplers, pool, rng)
        };
        queries.push(surface.clone());
        labels.push(label);
        state = WalkState { topic, surface };
    }
    (queries, labels)
}

struct EpochParams {
    start: u64,
    n_sessions: usize,
    is_test: bool,
}

#[allow(clippy::too_many_arguments)]
fn gen_epoch(
    vocab: &Vocabulary,
    cfg: &SimConfig,
    samplers: &Samplers,
    params: EpochParams,
    rng: &mut StdRng,
) -> (Vec<GeneratedSession>, Vec<RawLogRecord>) {
    let n_machines = if cfg.traffic.n_machines > 0 {
        cfg.traffic.n_machines
    } else {
        (params.n_sessions / 20).max(50)
    };
    // Walk pools: the train epoch never touches test-only topics.
    let train_pool: Vec<TopicId> = vocab.train_topics().to_vec();
    let all_pool: Vec<TopicId> = vocab.iter().map(|t| t.id).collect();

    let mut machine_clock: FxHashMap<u64, u64> = FxHashMap::default();
    let mut sessions = Vec::with_capacity(params.n_sessions);
    let mut records = Vec::with_capacity(params.n_sessions * 3);

    for _ in 0..params.n_sessions {
        let machine = rng.random_range(0..n_machines as u64);

        // Pick the intent.
        let intent = match &samplers.novelty_zipf {
            Some(nz) if params.is_test && rng.random_bool(cfg.session.test_novelty_prob) => {
                samplers.novelty_order[nz.sample(rng)]
            }
            _ => samplers.topic_order[samplers.topic_zipf.sample(rng)],
        };

        let pool: &[TopicId] = if params.is_test {
            &all_pool
        } else {
            &train_pool
        };

        // Session length comes from the main stream so the length
        // distribution matches the configuration exactly (Fig 5); walks
        // sharing a canonical variant then share query prefixes.
        let len = samplers.length.sample(rng) + 1;

        // Canonical variant or fresh walk.
        let (queries, labels) = if rng.random_bool(1.0 - cfg.session.fresh_walk_prob) {
            let variant = samplers.variant_zipf.sample(rng) as u32;
            let walk_seed = cfg.seed ^ fx_hash_one(&(intent.0, variant));
            let mut walk_rng = StdRng::seed_from_u64(walk_seed);
            let noise = Some((&mut *rng, cfg.session.walk_noise));
            gen_walk(vocab, intent, len, samplers, pool, &mut walk_rng, noise)
        } else {
            gen_walk(vocab, intent, len, samplers, pool, rng, None)
        };

        // Timestamps.
        let start = match machine_clock.get(&machine) {
            None => params.start + rng.random_range(0..3 * DAY),
            Some(&last) => {
                last + cfg.traffic.inter_gap_min_secs
                    + exp_sample(rng, cfg.traffic.inter_gap_mean_secs) as u64
            }
        };
        let mut t = start;
        for (i, q) in queries.iter().enumerate() {
            let gap = (exp_sample(rng, cfg.traffic.intra_gap_mean_secs) as u64 + 5)
                .min(cfg.traffic.intra_gap_cap_secs);
            let n_clicks = rng.random_range(0..=cfg.traffic.max_clicks);
            let root = vocab.topic(vocab.topic(intent).root).query.clone();
            let host = root.split(' ').next().unwrap_or("site").to_owned();
            let mut clicks = Vec::with_capacity(n_clicks);
            for c in 0..n_clicks {
                // Clicks land strictly inside the gap to the next query so
                // the 30-minute rule never splits a session at a click.
                let offset = 3 + (gap.saturating_sub(5)) * (c as u64 + 1) / (n_clicks as u64 + 1);
                clicks.push(Click {
                    url: format!("www.{host}.com/{}/{c}", intent.0),
                    timestamp: t + offset,
                });
            }
            records.push(RawLogRecord {
                machine_id: machine,
                timestamp: t,
                query: q.clone(),
                clicks,
            });
            if i + 1 < queries.len() {
                t += gap;
            }
        }
        let last_activity = records.last().map(|r| r.last_activity()).unwrap_or(t);
        machine_clock.insert(machine, last_activity.max(t));

        sessions.push(GeneratedSession {
            machine_id: machine,
            start_time: start,
            queries,
            intent,
            labels,
        });
    }

    // Emit a realistic, globally time-ordered stream.
    records.sort_by_key(|r| (r.timestamp, r.machine_id));
    (sessions, records)
}

/// Run the full simulation: build the vocabulary, generate both epochs.
pub fn generate(cfg: &SimConfig) -> SimulatedLogs {
    let vocabulary = Vocabulary::build(&cfg.vocab, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed_0002);
    let samplers = Samplers::build(&vocabulary, cfg, &mut rng);

    let (train_sessions, train) = gen_epoch(
        &vocabulary,
        cfg,
        &samplers,
        EpochParams {
            start: 0,
            n_sessions: cfg.train_sessions,
            is_test: false,
        },
        &mut rng,
    );
    let (test_sessions, test) = gen_epoch(
        &vocabulary,
        cfg,
        &samplers,
        EpochParams {
            start: TRAIN_EPOCH_DAYS * DAY,
            n_sessions: cfg.test_sessions,
            is_test: true,
        },
        &mut rng,
    );

    SimulatedLogs {
        train,
        test,
        truth: SimTruth {
            vocabulary,
            train_sessions,
            test_sessions,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn small_logs() -> SimulatedLogs {
        generate(&SimConfig::small(2_000, 500, 99))
    }

    #[test]
    fn generates_requested_session_counts() {
        let logs = small_logs();
        assert_eq!(logs.truth.train_sessions.len(), 2_000);
        assert_eq!(logs.truth.test_sessions.len(), 500);
        assert!(!logs.train.is_empty());
        assert!(!logs.test.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&SimConfig::small(300, 100, 5));
        let b = generate(&SimConfig::small(300, 100, 5));
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x, y);
        }
        let c = generate(&SimConfig::small(300, 100, 6));
        assert_ne!(
            a.train.iter().map(|r| r.query.clone()).collect::<Vec<_>>(),
            c.train.iter().map(|r| r.query.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn labels_have_transition_arity() {
        let logs = small_logs();
        for s in logs
            .truth
            .train_sessions
            .iter()
            .chain(&logs.truth.test_sessions)
        {
            assert_eq!(s.labels.len(), s.queries.len() - 1);
            assert!(!s.queries.is_empty());
        }
    }

    #[test]
    fn record_stream_is_time_ordered() {
        let logs = small_logs();
        for w in logs.train.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn record_count_matches_query_count() {
        let logs = small_logs();
        let total_queries: usize = logs
            .truth
            .train_sessions
            .iter()
            .map(|s| s.queries.len())
            .sum();
        assert_eq!(logs.train.len(), total_queries);
    }

    #[test]
    fn ground_truth_labels_are_structurally_consistent() {
        let logs = small_logs();
        let v = &logs.truth.vocabulary;
        for s in &logs.truth.train_sessions {
            for (i, &label) in s.labels.iter().enumerate() {
                let (a, b) = (&s.queries[i], &s.queries[i + 1]);
                match label {
                    PatternType::RepeatedQuery => assert_eq!(a, b),
                    PatternType::SpellingChange => {
                        assert_ne!(a, b);
                        assert!(sqp_common::dist::levenshtein_str(a, b) <= 2);
                        // The fix is a real surface, the typo is not.
                        assert!(v.topic_of_surface(b).is_some());
                        assert!(v.topic_of_surface(a).is_none());
                    }
                    PatternType::Specialization => {
                        let ta = v.topic_of_surface(a);
                        let tb = v.topic_of_surface(b).unwrap();
                        if let Some(ta) = ta {
                            assert_eq!(v.parent(tb), Some(ta));
                        }
                    }
                    PatternType::Generalization => {
                        let ta = v.topic_of_surface(a).unwrap();
                        let tb = v.topic_of_surface(b).unwrap();
                        assert_eq!(v.parent(ta), Some(tb));
                    }
                    PatternType::ParallelMovement => {
                        let ta = v.topic_of_surface(a).unwrap();
                        let tb = v.topic_of_surface(b).unwrap();
                        assert_eq!(v.parent(ta), v.parent(tb));
                        assert_ne!(ta, tb);
                    }
                    PatternType::SynonymSubstitution => {
                        let ta = v.topic_of_surface(a).unwrap();
                        let tb = v.topic_of_surface(b).unwrap();
                        assert_eq!(ta, tb);
                        assert_ne!(a, b);
                    }
                    PatternType::Other => {}
                }
            }
        }
    }

    #[test]
    fn intra_session_gaps_stay_below_cutoff() {
        let logs = small_logs();
        // Group records by machine, check that consecutive queries of the
        // same generated session are < 30 minutes apart.
        for s in &logs.truth.train_sessions {
            // Find this session's records by machine + time window.
            let recs: Vec<&RawLogRecord> = logs
                .train
                .iter()
                .filter(|r| r.machine_id == s.machine_id && r.timestamp >= s.start_time)
                .take(s.queries.len())
                .collect();
            for w in recs.windows(2) {
                assert!(
                    w[1].timestamp.saturating_sub(w[0].last_activity()) < 30 * 60 + 60,
                    "intra-session gap too large"
                );
            }
        }
    }

    #[test]
    fn aggregated_sessions_show_heavy_repetition() {
        // Canonical walk variants must make popular sessions repeat — the
        // precondition for the paper's Figure 6 power law.
        let logs = generate(&SimConfig::small(5_000, 100, 123));
        let mut counts: std::collections::HashMap<Vec<String>, u64> = Default::default();
        for s in &logs.truth.train_sessions {
            *counts.entry(s.queries.clone()).or_insert(0) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(
            max >= 20,
            "most frequent aggregated session only {max} times"
        );
        assert!(counts.len() > 100, "too little diversity: {}", counts.len());
    }

    #[test]
    fn test_epoch_contains_novel_queries() {
        let logs = generate(&SimConfig::small(3_000, 3_000, 77));
        let train_q: std::collections::HashSet<&str> =
            logs.train.iter().map(|r| r.query.as_str()).collect();
        let novel = logs
            .test
            .iter()
            .filter(|r| !train_q.contains(r.query.as_str()))
            .count();
        assert!(novel > 0, "test epoch has no novel queries");
    }

    #[test]
    fn test_epoch_overlaps_training() {
        let logs = generate(&SimConfig::small(3_000, 3_000, 77));
        let train_q: std::collections::HashSet<&str> =
            logs.train.iter().map(|r| r.query.as_str()).collect();
        let seen = logs
            .test
            .iter()
            .filter(|r| train_q.contains(r.query.as_str()))
            .count();
        assert!(
            seen as f64 / logs.test.len() as f64 > 0.5,
            "test epoch barely overlaps training: {seen}/{}",
            logs.test.len()
        );
    }

    #[test]
    fn pattern_mixture_roughly_matches_config() {
        let logs = generate(&SimConfig::small(20_000, 100, 2024));
        let mut counts = [0usize; 7];
        let mut total = 0usize;
        for s in &logs.truth.train_sessions {
            if let Some(l) = s.dominant_label() {
                counts[l.index()] += 1;
                total += 1;
            }
        }
        // Spelling-change share among multi-query sessions should be near its
        // configured first-transition weight (8%).
        let spelling = counts[PatternType::SpellingChange.index()] as f64 / total as f64;
        assert!(
            (0.04..0.14).contains(&spelling),
            "spelling share {spelling}"
        );
        // Every pattern type should occur.
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "pattern {:?} never generated", PatternType::ALL[i]);
        }
    }
}
