//! Synthetic query vocabulary: a forest of topic trees.
//!
//! Real reformulation behaviour (Table I of the paper) is structural:
//! *specialization* appends terms ("O2" ⇒ "O2 mobile" ⇒ "O2 mobile phones"),
//! *generalization* drops them, *parallel movement* switches to a sibling
//! concept, *synonym substitution* swaps surface forms ("BAMC" ⇒ "Brooke Army
//! Medical Center"), and *spelling change* fixes a typo. We therefore generate
//! a forest where each topic's canonical query is the term path from its
//! root, so every pattern has an exact structural counterpart the simulator,
//! the pattern classifier, and the user-study oracle can all agree on.

use crate::config::VocabConfig;
use sqp_common::rng::{Rng, StdRng};
use sqp_common::{FxHashMap, FxHashSet};

/// Identifier of a topic node in the vocabulary forest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TopicId(pub u32);

impl TopicId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of the topic forest.
#[derive(Clone, Debug)]
pub struct Topic {
    /// This node's id.
    pub id: TopicId,
    /// Parent topic (None for roots).
    pub parent: Option<TopicId>,
    /// Child topics (specializations).
    pub children: Vec<TopicId>,
    /// Depth in the tree; roots are 0.
    pub depth: usize,
    /// Root ancestor (self for roots).
    pub root: TopicId,
    /// Canonical query surface: the space-joined term path from the root.
    pub query: String,
    /// Optional alternate surface form (acronym or alias).
    pub synonym: Option<String>,
    /// True when this topic exists only in the test epoch (fresh queries).
    pub test_only: bool,
}

/// The complete synthetic vocabulary.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    topics: Vec<Topic>,
    roots: Vec<TopicId>,
    train_topics: Vec<TopicId>,
    test_only_topics: Vec<TopicId>,
    surface_to_topic: FxHashMap<String, TopicId>,
}

/// Syllables used to build pronounceable pseudo-words, so that misspellings
/// and acronyms look like the paper's examples rather than random noise.
const SYLLABLES: &[&str] = &[
    "ba", "be", "bo", "da", "de", "do", "fa", "fe", "fi", "ga", "go", "ha", "hi", "ja", "jo", "ka",
    "ke", "ko", "la", "le", "li", "lo", "ma", "me", "mi", "mo", "na", "ne", "ni", "no", "pa", "pe",
    "po", "ra", "re", "ri", "ro", "sa", "se", "si", "so", "ta", "te", "ti", "to", "va", "ve", "vi",
    "wa", "we", "ya", "yo", "za", "zo", "dar", "fel", "gor", "han", "jin", "kul", "mer", "nor",
    "pol", "rok", "sal", "tam", "ven", "wex", "yor", "zim", "lun", "qar",
];

fn make_word(rng: &mut StdRng, used: &mut FxHashSet<String>) -> String {
    loop {
        let n = rng.random_range(2u32..=3);
        let mut w = String::new();
        for _ in 0..n {
            w.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
        }
        if used.insert(w.clone()) {
            return w;
        }
    }
}

impl Vocabulary {
    /// Build a vocabulary forest from `cfg`, deterministically in `seed`.
    pub fn build(cfg: &VocabConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0001);
        let mut vocab = Vocabulary {
            topics: Vec::new(),
            roots: Vec::new(),
            train_topics: Vec::new(),
            test_only_topics: Vec::new(),
            surface_to_topic: FxHashMap::default(),
        };
        let mut used_words: FxHashSet<String> = FxHashSet::default();

        let n_test_roots = ((cfg.n_roots as f64) * cfg.test_only_root_frac).ceil() as usize;
        for r in 0..cfg.n_roots + n_test_roots {
            let test_only = r >= cfg.n_roots;
            // Roots are 1–2 words ("washington mutual", "o2").
            let mut head = make_word(&mut rng, &mut used_words);
            if rng.random_bool(0.35) {
                head.push(' ');
                head.push_str(&make_word(&mut rng, &mut used_words));
            }
            let root_id = vocab.push_topic(None, 0, head, test_only);
            vocab.roots.push(root_id);
            vocab.expand(root_id, cfg, &mut rng, &mut used_words, test_only);
        }

        // Alternate surface forms.
        let ids: Vec<TopicId> = vocab.topics.iter().map(|t| t.id).collect();
        for id in ids {
            if rng.random_bool(cfg.synonym_frac) {
                vocab.assign_synonym(id, &mut rng, &mut used_words);
            }
        }

        for t in &vocab.topics {
            if t.test_only {
                vocab.test_only_topics.push(t.id);
            } else {
                vocab.train_topics.push(t.id);
            }
        }
        vocab
    }

    fn push_topic(
        &mut self,
        parent: Option<TopicId>,
        depth: usize,
        query: String,
        test_only: bool,
    ) -> TopicId {
        let id = TopicId(self.topics.len() as u32);
        let root = parent.map_or(id, |p| self.topics[p.index()].root);
        self.surface_to_topic.insert(query.clone(), id);
        self.topics.push(Topic {
            id,
            parent,
            children: Vec::new(),
            depth,
            root,
            query,
            synonym: None,
            test_only,
        });
        if let Some(p) = parent {
            self.topics[p.index()].children.push(id);
        }
        id
    }

    fn expand(
        &mut self,
        node: TopicId,
        cfg: &VocabConfig,
        rng: &mut StdRng,
        used_words: &mut FxHashSet<String>,
        test_only: bool,
    ) {
        let depth = self.topics[node.index()].depth;
        if depth >= cfg.max_depth || !rng.random_bool(cfg.expand_prob) {
            return;
        }
        let k = rng.random_range(cfg.branch_min..=cfg.branch_max);
        for _ in 0..k {
            let modifier = make_word(rng, used_words);
            let query = format!("{} {}", self.topics[node.index()].query, modifier);
            let child = self.push_topic(Some(node), depth + 1, query, test_only);
            self.expand(child, cfg, rng, used_words, test_only);
        }
    }

    fn assign_synonym(
        &mut self,
        id: TopicId,
        rng: &mut StdRng,
        used_words: &mut FxHashSet<String>,
    ) {
        let canonical = self.topics[id.index()].query.clone();
        let words: Vec<&str> = canonical.split(' ').collect();
        let alt = if words.len() >= 2 {
            // Acronym form, like BAMC ⇔ Brooke Army Medical Center.
            words
                .iter()
                .map(|w| w.chars().next().unwrap().to_ascii_uppercase())
                .collect::<String>()
        } else {
            make_word(rng, used_words)
        };
        if self.surface_to_topic.contains_key(&alt) {
            return; // collision: simply skip the synonym
        }
        self.surface_to_topic.insert(alt.clone(), id);
        self.topics[id.index()].synonym = Some(alt);
    }

    /// Number of topics in the forest.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// True when the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// The topic node for `id`.
    pub fn topic(&self, id: TopicId) -> &Topic {
        &self.topics[id.index()]
    }

    /// All root topics.
    pub fn roots(&self) -> &[TopicId] {
        &self.roots
    }

    /// Topics available to the training epoch.
    pub fn train_topics(&self) -> &[TopicId] {
        &self.train_topics
    }

    /// Topics reserved for the test epoch (fresh queries).
    pub fn test_only_topics(&self) -> &[TopicId] {
        &self.test_only_topics
    }

    /// Canonical surface of a topic.
    pub fn canonical(&self, id: TopicId) -> &str {
        &self.topics[id.index()].query
    }

    /// Alternate surface, if assigned.
    pub fn synonym(&self, id: TopicId) -> Option<&str> {
        self.topics[id.index()].synonym.as_deref()
    }

    /// Topic owning `surface` (canonical or synonym), if any.
    pub fn topic_of_surface(&self, surface: &str) -> Option<TopicId> {
        self.surface_to_topic.get(surface).copied()
    }

    /// Parent topic.
    pub fn parent(&self, id: TopicId) -> Option<TopicId> {
        self.topics[id.index()].parent
    }

    /// Children (specializations) of a topic.
    pub fn children(&self, id: TopicId) -> &[TopicId] {
        &self.topics[id.index()].children
    }

    /// Siblings: other children of the same parent (roots have none).
    pub fn siblings(&self, id: TopicId) -> Vec<TopicId> {
        match self.topics[id.index()].parent {
            None => Vec::new(),
            Some(p) => self.topics[p.index()]
                .children
                .iter()
                .copied()
                .filter(|&c| c != id)
                .collect(),
        }
    }

    /// True when `a` is a strict ancestor of `b`.
    pub fn is_ancestor(&self, a: TopicId, b: TopicId) -> bool {
        let mut cur = self.topics[b.index()].parent;
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.topics[p.index()].parent;
        }
        false
    }

    /// True when `a` and `b` live in the same topic tree.
    pub fn same_root(&self, a: TopicId, b: TopicId) -> bool {
        self.topics[a.index()].root == self.topics[b.index()].root
    }

    /// Produce a misspelled variant of `surface` (a single character edit on a
    /// non-space position) that is guaranteed not to collide with any real
    /// surface in the vocabulary.
    pub fn misspell(&self, surface: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = surface.chars().collect();
        for _attempt in 0..16 {
            let mut c = chars.clone();
            // Pick a non-space position.
            let positions: Vec<usize> = (0..c.len()).filter(|&i| c[i] != ' ').collect();
            if positions.is_empty() {
                break;
            }
            let i = positions[rng.random_range(0..positions.len())];
            match rng.random_range(0..4u32) {
                0 => {
                    // delete
                    c.remove(i);
                }
                1 => {
                    // substitute with a nearby letter
                    let replacement = (b'a' + rng.random_range(0..26u8)) as char;
                    if c[i] == replacement {
                        continue;
                    }
                    c[i] = replacement;
                }
                2 => {
                    // transpose with the next non-space char
                    if i + 1 < c.len() && c[i + 1] != ' ' && c[i] != c[i + 1] {
                        c.swap(i, i + 1);
                    } else {
                        continue;
                    }
                }
                _ => {
                    // insert a duplicate of the current char ("gogle"→"goggle")
                    c.insert(i, c[i]);
                }
            }
            let candidate: String = c.into_iter().collect();
            if candidate != surface && !self.surface_to_topic.contains_key(&candidate) {
                return candidate;
            }
        }
        // Pathological fallback: append a char; cannot collide with canonical
        // forms (they never end in 'x' followed by nothing special) — verify.
        let mut fallback = surface.to_owned();
        fallback.push('x');
        if self.surface_to_topic.contains_key(&fallback) {
            fallback.push('x');
        }
        fallback
    }

    /// Iterate all topics.
    pub fn iter(&self) -> impl Iterator<Item = &Topic> {
        self.topics.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_vocab() -> Vocabulary {
        Vocabulary::build(
            &VocabConfig {
                n_roots: 10,
                ..VocabConfig::default()
            },
            7,
        )
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Vocabulary::build(&VocabConfig::default(), 3);
        let b = Vocabulary::build(&VocabConfig::default(), 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.query, y.query);
            assert_eq!(x.synonym, y.synonym);
        }
        let c = Vocabulary::build(&VocabConfig::default(), 4);
        assert_ne!(
            a.iter().map(|t| t.query.clone()).collect::<Vec<_>>(),
            c.iter().map(|t| t.query.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn child_query_extends_parent_query() {
        let v = small_vocab();
        for t in v.iter() {
            if let Some(p) = t.parent {
                let parent_q = v.canonical(p);
                assert!(
                    t.query.starts_with(parent_q) && t.query.len() > parent_q.len(),
                    "child {:?} does not extend parent {:?}",
                    t.query,
                    parent_q
                );
                assert_eq!(t.depth, v.topic(p).depth + 1);
            } else {
                assert_eq!(t.depth, 0);
            }
        }
    }

    #[test]
    fn canonical_surfaces_are_unique() {
        let v = small_vocab();
        let mut seen = std::collections::HashSet::new();
        for t in v.iter() {
            assert!(seen.insert(t.query.clone()), "duplicate query {}", t.query);
        }
    }

    #[test]
    fn surface_lookup_roundtrip() {
        let v = small_vocab();
        for t in v.iter() {
            assert_eq!(v.topic_of_surface(&t.query), Some(t.id));
            if let Some(s) = &t.synonym {
                assert_eq!(v.topic_of_surface(s), Some(t.id));
            }
        }
        assert_eq!(v.topic_of_surface("no such query"), None);
    }

    #[test]
    fn ancestry_and_roots() {
        let v = small_vocab();
        for t in v.iter() {
            let root = v.topic(t.id).root;
            assert!(v.roots().contains(&root));
            if t.depth > 0 {
                assert!(v.is_ancestor(root, t.id) || root == t.id);
                assert!(v.same_root(root, t.id));
            }
            for &c in v.children(t.id) {
                assert!(v.is_ancestor(t.id, c));
                assert!(!v.is_ancestor(c, t.id));
            }
        }
    }

    #[test]
    fn siblings_share_parent() {
        let v = small_vocab();
        for t in v.iter() {
            for s in v.siblings(t.id) {
                assert_eq!(v.parent(s), v.parent(t.id));
                assert_ne!(s, t.id);
            }
        }
    }

    #[test]
    fn test_only_partition() {
        let v = Vocabulary::build(&VocabConfig::default(), 11);
        assert!(!v.test_only_topics().is_empty());
        assert!(!v.train_topics().is_empty());
        for &id in v.test_only_topics() {
            assert!(v.topic(id).test_only);
        }
        for &id in v.train_topics() {
            assert!(!v.topic(id).test_only);
        }
        assert_eq!(v.test_only_topics().len() + v.train_topics().len(), v.len());
    }

    #[test]
    fn misspell_is_close_but_distinct() {
        let v = small_vocab();
        let mut rng = StdRng::seed_from_u64(5);
        for t in v.iter().take(30) {
            let typo = v.misspell(&t.query, &mut rng);
            assert_ne!(typo, t.query);
            assert!(v.topic_of_surface(&typo).is_none(), "typo collides: {typo}");
            let d = sqp_common::dist::levenshtein_str(&typo, &t.query);
            assert!(d <= 2, "typo too far: {} vs {}", typo, t.query);
        }
    }

    #[test]
    fn acronym_synonyms_use_first_letters() {
        let v = Vocabulary::build(
            &VocabConfig {
                n_roots: 40,
                synonym_frac: 1.0,
                ..VocabConfig::default()
            },
            13,
        );
        let mut found_acronym = false;
        for t in v.iter() {
            if let Some(s) = &t.synonym {
                let words: Vec<&str> = t.query.split(' ').collect();
                if words.len() >= 2 {
                    found_acronym = true;
                    assert_eq!(s.len(), words.len(), "{s} vs {}", t.query);
                    for (ch, w) in s.chars().zip(&words) {
                        assert_eq!(
                            ch.to_ascii_lowercase(),
                            w.chars().next().unwrap(),
                            "{s} vs {}",
                            t.query
                        );
                    }
                }
            }
        }
        assert!(found_acronym);
    }
}
