//! Simulator configuration.
//!
//! The defaults are calibrated against the statistics the paper reports for
//! its 150-day commercial log: mean session length 2–3 queries (§I cites
//! 2.85/2.31/2.31 from Jansen et al.), order-sensitive reformulation patterns
//! at 34.34% of sessions (Fig 1), power-law aggregated-session frequencies
//! (Fig 6), and a test epoch containing queries never seen in training
//! (Table VI reason 1).

/// Shape of the synthetic topic-tree vocabulary.
#[derive(Clone, Debug)]
pub struct VocabConfig {
    /// Number of root topics (head concepts like "nokia n73", "kidney stones").
    pub n_roots: usize,
    /// Minimum children per non-leaf topic.
    pub branch_min: usize,
    /// Maximum children per non-leaf topic (inclusive).
    pub branch_max: usize,
    /// Maximum tree depth (root = 0). Specialization chains are at most this long.
    pub max_depth: usize,
    /// Probability that an interior/leaf topic receives an internal subtree at
    /// each level (controls tree sparsity).
    pub expand_prob: f64,
    /// Fraction of topics given an alternate surface form (synonym/acronym).
    pub synonym_frac: f64,
    /// Fraction of *additional* root topics that exist only in the test epoch
    /// (fresh queries, exercising coverage failures).
    pub test_only_root_frac: f64,
}

impl Default for VocabConfig {
    fn default() -> Self {
        Self {
            n_roots: 150,
            branch_min: 2,
            branch_max: 4,
            max_depth: 4,
            expand_prob: 0.9,
            synonym_frac: 0.35,
            test_only_root_frac: 0.15,
        }
    }
}

/// Session-walk behaviour.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Unnormalized weights over the paper's seven reformulation patterns, in
    /// [`crate::patterns::PatternType::ALL`] order: spelling change, parallel
    /// movement, generalization, specialization, synonym substitution,
    /// repeated query, other.
    ///
    /// Default puts the order-sensitive trio (spelling + generalization +
    /// specialization) at 34.34%, matching Fig 1.
    pub pattern_weights: [f64; 7],
    /// Unnormalized probabilities of session lengths 1, 2, 3, … .
    pub length_weights: Vec<f64>,
    /// Zipf exponent for intent (topic) popularity.
    pub zipf_theta: f64,
    /// Number of canonical walk variants per intent; repeated sessions reuse
    /// them, producing the power-law aggregated-session spectrum of Fig 6.
    pub walk_variants: usize,
    /// Zipf exponent over walk variants.
    pub variant_theta: f64,
    /// Probability that a session takes a fresh random walk instead of a
    /// canonical variant (the long tail of unique sessions).
    pub fresh_walk_prob: f64,
    /// Per-transition probability that a canonical walk deviates from its
    /// script (an "exploration" step). Noise is what gives deep contexts
    /// non-zero prediction entropy (Fig 2) and makes long test contexts
    /// diverge from training prefixes (the N-gram coverage collapse, Fig 11).
    pub walk_noise: f64,
    /// Probability that a *test-epoch* session targets a test-only topic.
    pub test_novelty_prob: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            // spelling, parallel, generalize, specialize, synonym, repeat, other
            pattern_weights: [0.0800, 0.1600, 0.0834, 0.1800, 0.0700, 0.1700, 0.2566],
            // Mean ≈ 2.2, matching the paper's 2–3 range, with a visible tail
            // of sessions longer than 4 queries (Fig 5).
            length_weights: vec![0.42, 0.27, 0.15, 0.08, 0.045, 0.02, 0.01, 0.005],
            zipf_theta: 1.05,
            walk_variants: 12,
            variant_theta: 1.4,
            fresh_walk_prob: 0.30,
            walk_noise: 0.15,
            test_novelty_prob: 0.22,
        }
    }
}

/// Raw-log emission behaviour (timestamps, machines, clicks).
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Number of distinct machines (users). 0 ⇒ derived as n_sessions / 20.
    pub n_machines: usize,
    /// Mean seconds between queries inside a session (exponential).
    pub intra_gap_mean_secs: f64,
    /// Hard cap on intra-session gaps, kept safely below the 30-minute
    /// segmentation cutoff.
    pub intra_gap_cap_secs: u64,
    /// Minimum seconds between two sessions of the same machine, kept safely
    /// above the cutoff so segmentation can recover session boundaries.
    pub inter_gap_min_secs: u64,
    /// Mean of the additional exponential inter-session gap.
    pub inter_gap_mean_secs: f64,
    /// Maximum clicks recorded after a query.
    pub max_clicks: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            n_machines: 0,
            intra_gap_mean_secs: 95.0,
            intra_gap_cap_secs: 20 * 60,
            inter_gap_min_secs: 35 * 60,
            inter_gap_mean_secs: 6.0 * 3600.0,
            max_clicks: 3,
        }
    }
}

/// Top-level simulation config: vocabulary + sessions + traffic + scale.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Vocabulary shape.
    pub vocab: VocabConfig,
    /// Session-walk behaviour.
    pub session: SessionConfig,
    /// Raw-log emission behaviour.
    pub traffic: TrafficConfig,
    /// Number of sessions in the training epoch (the paper's 120 days).
    pub train_sessions: usize,
    /// Number of sessions in the test epoch (the paper's 30 days).
    pub test_sessions: usize,
    /// Master seed; every derived stream is deterministic in this.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            vocab: VocabConfig::default(),
            session: SessionConfig::default(),
            traffic: TrafficConfig::default(),
            train_sessions: 200_000,
            test_sessions: 50_000,
            seed: 42,
        }
    }
}

impl SimConfig {
    /// A small corpus for tests and benchmarks.
    pub fn small(train_sessions: usize, test_sessions: usize, seed: u64) -> Self {
        Self {
            vocab: VocabConfig {
                n_roots: 40,
                ..VocabConfig::default()
            },
            train_sessions,
            test_sessions,
            seed,
            ..Self::default()
        }
    }

    /// Scale both epochs by `factor` (used by the training-time sweep,
    /// Fig 12).
    pub fn scaled(&self, factor: f64) -> Self {
        let mut c = self.clone();
        c.train_sessions = ((self.train_sessions as f64) * factor).round().max(1.0) as usize;
        c.test_sessions = ((self.test_sessions as f64) * factor).round().max(1.0) as usize;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pattern_mix_matches_paper_order_sensitivity() {
        let w = SessionConfig::default().pattern_weights;
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // spelling (0) + generalization (2) + specialization (3) = 34.34%
        let order_sensitive = w[0] + w[2] + w[3];
        assert!((order_sensitive - 0.3434).abs() < 1e-9);
    }

    #[test]
    fn default_length_mean_in_paper_range() {
        let w = SessionConfig::default().length_weights;
        let total: f64 = w.iter().sum();
        let mean: f64 = w
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p / total)
            .sum();
        assert!((2.0..3.0).contains(&mean), "mean session length {mean}");
    }

    #[test]
    fn traffic_gaps_respect_segmentation_cutoff() {
        let t = TrafficConfig::default();
        assert!(t.intra_gap_cap_secs < 30 * 60);
        assert!(t.inter_gap_min_secs > 30 * 60);
    }

    #[test]
    fn scaled_changes_session_counts() {
        let c = SimConfig::default().scaled(0.5);
        assert_eq!(c.train_sessions, 100_000);
        assert_eq!(c.test_sessions, 25_000);
    }
}
