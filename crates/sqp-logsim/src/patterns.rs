//! The seven query-reformulation pattern types.
//!
//! These are the session patterns of Rieh & Xie / Teevan et al. that the
//! paper's Figure 1 and Table I use; the simulator draws session transitions
//! from a configurable mixture over them, and the classifier in
//! `sqp-sessions` recovers them from raw query text.

/// One of the seven reformulation patterns of the paper's Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PatternType {
    /// Typo followed by its correction ("goggle" ⇒ "google").
    SpellingChange,
    /// Move to a sibling concept ("SMTP" ⇒ "POP3").
    ParallelMovement,
    /// Drop terms / move to the parent concept
    /// ("washington mutual home loans" ⇒ "home loans").
    Generalization,
    /// Add terms / move to a child concept ("O2" ⇒ "O2 mobile").
    Specialization,
    /// Swap surface forms of the same concept ("BAMC" ⇒ "Brooke Army Medical
    /// Center").
    SynonymSubstitution,
    /// Re-issue the same query ("myspace" ⇒ "myspace").
    RepeatedQuery,
    /// Anything else — typically an unrelated jump
    /// ("muzzle brake" ⇒ "shared calenders").
    Other,
}

impl PatternType {
    /// All seven patterns, in the order used by
    /// [`crate::config::SessionConfig::pattern_weights`].
    pub const ALL: [PatternType; 7] = [
        PatternType::SpellingChange,
        PatternType::ParallelMovement,
        PatternType::Generalization,
        PatternType::Specialization,
        PatternType::SynonymSubstitution,
        PatternType::RepeatedQuery,
        PatternType::Other,
    ];

    /// Human-readable label matching the paper's Figure 1 axis.
    pub fn label(self) -> &'static str {
        match self {
            PatternType::SpellingChange => "Spelling change",
            PatternType::ParallelMovement => "Parallel movement",
            PatternType::Generalization => "Generalization",
            PatternType::Specialization => "Specialization",
            PatternType::SynonymSubstitution => "Synonym substitution",
            PatternType::RepeatedQuery => "Repeated query",
            PatternType::Other => "Others",
        }
    }

    /// The paper singles out spelling change, generalization and
    /// specialization as *directly related to the order of queries* (§I);
    /// together they account for 34.34% of sessions in its user study.
    pub fn is_order_sensitive(self) -> bool {
        matches!(
            self,
            PatternType::SpellingChange | PatternType::Generalization | PatternType::Specialization
        )
    }

    /// Position of this pattern in [`Self::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&p| p == self).unwrap()
    }
}

impl std::fmt::Display for PatternType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_seven_unique_patterns() {
        let set: std::collections::HashSet<_> = PatternType::ALL.iter().collect();
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn index_roundtrip() {
        for (i, p) in PatternType::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn order_sensitive_trio() {
        let sensitive: Vec<_> = PatternType::ALL
            .iter()
            .filter(|p| p.is_order_sensitive())
            .collect();
        assert_eq!(sensitive.len(), 3);
        assert!(sensitive.contains(&&PatternType::SpellingChange));
        assert!(sensitive.contains(&&PatternType::Generalization));
        assert!(sensitive.contains(&&PatternType::Specialization));
    }

    #[test]
    fn labels_match_figure_one() {
        assert_eq!(PatternType::Other.label(), "Others");
        assert_eq!(PatternType::SpellingChange.label(), "Spelling change");
    }
}
