//! Discrete sampling: Zipf ranks and arbitrary weighted choices.
//!
//! Query and intent popularity on the web is famously Zipfian; the simulator
//! uses a table-based inverse-CDF sampler (exact, O(log n) per draw) rather
//! than approximate rejection schemes, because vocabulary sizes here are at
//! most a few tens of thousands.

use sqp_common::rng::Rng;

/// Sampler over `{0, …, n-1}` from a cumulative distribution table.
#[derive(Clone, Debug)]
pub struct CumulativeSampler {
    cum: Vec<f64>,
}

impl CumulativeSampler {
    /// Build from unnormalized non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
            acc += w;
            cum.push(acc);
        }
        assert!(acc > 0.0, "weights sum to zero");
        // Normalize so the last entry is exactly 1.0.
        for c in &mut cum {
            *c /= acc;
        }
        *cum.last_mut().unwrap() = 1.0;
        Self { cum }
    }

    /// Zipf(θ) over `n` ranks: weight of rank r (0-based) ∝ 1/(r+1)^θ.
    pub fn zipf(n: usize, theta: f64) -> Self {
        assert!(n > 0);
        let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-theta)).collect();
        Self::from_weights(&weights)
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True when there are no outcomes (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draw one outcome index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random::<f64>();
        self.index_of(u)
    }

    /// Outcome whose CDF interval contains `u` ∈ [0,1).
    pub fn index_of(&self, u: f64) -> usize {
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => (i + 1).min(self.cum.len() - 1),
            Err(i) => i.min(self.cum.len() - 1),
        }
    }

    /// Probability mass of outcome `i`.
    pub fn probability(&self, i: usize) -> f64 {
        if i == 0 {
            self.cum[0]
        } else {
            self.cum[i] - self.cum[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::rng::StdRng;

    #[test]
    fn respects_weights_roughly() {
        let s = CumulativeSampler::from_weights(&[1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 2];
        for _ in 0..20_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        let frac = counts[1] as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let s = CumulativeSampler::zipf(100, 1.0);
        for i in 1..100 {
            assert!(s.probability(i) <= s.probability(i - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_head_mass() {
        // For n = 1000, θ = 1.0, rank 1 has mass 1/H_1000 ≈ 0.1338.
        let s = CumulativeSampler::zipf(1000, 1.0);
        let h: f64 = (1..=1000).map(|r| 1.0 / r as f64).sum();
        assert!((s.probability(0) - 1.0 / h).abs() < 1e-12);
    }

    #[test]
    fn index_of_boundaries() {
        let s = CumulativeSampler::from_weights(&[1.0, 1.0]);
        assert_eq!(s.index_of(0.0), 0);
        assert_eq!(s.index_of(0.49), 0);
        assert_eq!(s.index_of(0.51), 1);
        assert_eq!(s.index_of(0.9999999), 1);
    }

    #[test]
    fn single_outcome_always_zero() {
        let s = CumulativeSampler::from_weights(&[5.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn zero_weights_panic() {
        CumulativeSampler::from_weights(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty weight vector")]
    fn empty_weights_panic() {
        CumulativeSampler::from_weights(&[]);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = CumulativeSampler::zipf(50, 1.2);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| s.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(99), draw(99));
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use sqp_common::rng::StdRng;

    fn rand_weights(rng: &mut StdRng) -> Vec<f64> {
        let n = rng.random_range(1usize..40);
        (0..n).map(|_| 0.01 + rng.random::<f64>() * 9.99).collect()
    }

    #[test]
    fn probabilities_sum_to_one() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(case);
            let s = CumulativeSampler::from_weights(&rand_weights(&mut rng));
            let sum: f64 = (0..s.len()).map(|i| s.probability(i)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "case {case}");
        }
    }

    #[test]
    fn index_always_in_range() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(300 + case);
            let s = CumulativeSampler::from_weights(&rand_weights(&mut rng));
            for _ in 0..16 {
                let u: f64 = rng.random();
                assert!(s.index_of(u) < s.len(), "case {case}");
            }
        }
    }
}
