//! Raw search-log records (the paper's Table III format) and their
//! serialization.
//!
//! Two codecs are provided:
//! * a human-readable TSV form mirroring Table III
//!   (`machine ⟶ timestamp ⟶ query ⟶ #clicks ⟶ click list`);
//! * a compact length-prefixed binary form built on [`sqp_common::bytes`],
//!   used when logs
//!   are staged on disk between the generator and the pipeline.

use sqp_common::bytes::{Bytes, BytesMut};

/// A URL click following a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Click {
    /// Clicked URL.
    pub url: String,
    /// Click time (seconds since epoch start).
    pub timestamp: u64,
}

/// One raw log line: a query issued by a machine, with its clicks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawLogRecord {
    /// Anonymized machine (user) identifier.
    pub machine_id: u64,
    /// Query issue time (seconds since epoch start).
    pub timestamp: u64,
    /// Query text.
    pub query: String,
    /// Clicks on result URLs, in time order.
    pub clicks: Vec<Click>,
}

impl RawLogRecord {
    /// Time of the last activity in this record (query or final click);
    /// the 30-minute rule segments on gaps between activities.
    pub fn last_activity(&self) -> u64 {
        self.clicks
            .iter()
            .map(|c| c.timestamp)
            .max()
            .unwrap_or(self.timestamp)
            .max(self.timestamp)
    }
}

/// Render records as TSV, one per line (Table III layout).
pub fn to_tsv(records: &[RawLogRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.machine_id.to_string());
        out.push('\t');
        out.push_str(&r.timestamp.to_string());
        out.push('\t');
        out.push_str(&r.query);
        out.push('\t');
        out.push_str(&r.clicks.len().to_string());
        out.push('\t');
        for (i, c) in r.clicks.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(&c.url);
            out.push(',');
            out.push_str(&c.timestamp.to_string());
        }
        out.push('\n');
    }
    out
}

/// Parse the TSV form produced by [`to_tsv`].
///
/// Returns an error message naming the offending line on malformed input.
pub fn from_tsv(text: &str) -> Result<Vec<RawLogRecord>, String> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(5, '\t');
        let err = |what: &str| format!("line {}: {}", lineno + 1, what);
        let machine_id: u64 = parts
            .next()
            .ok_or_else(|| err("missing machine id"))?
            .parse()
            .map_err(|_| err("bad machine id"))?;
        let timestamp: u64 = parts
            .next()
            .ok_or_else(|| err("missing timestamp"))?
            .parse()
            .map_err(|_| err("bad timestamp"))?;
        let query = parts.next().ok_or_else(|| err("missing query"))?.to_owned();
        let n_clicks: usize = parts
            .next()
            .ok_or_else(|| err("missing click count"))?
            .parse()
            .map_err(|_| err("bad click count"))?;
        let clicks_field = parts.next().unwrap_or("");
        let mut clicks = Vec::with_capacity(n_clicks);
        if !clicks_field.is_empty() {
            for chunk in clicks_field.split(';') {
                let (url, ts) = chunk
                    .rsplit_once(',')
                    .ok_or_else(|| err("bad click entry"))?;
                clicks.push(Click {
                    url: url.to_owned(),
                    timestamp: ts.parse().map_err(|_| err("bad click timestamp"))?,
                });
            }
        }
        if clicks.len() != n_clicks {
            return Err(err("click count mismatch"));
        }
        records.push(RawLogRecord {
            machine_id,
            timestamp,
            query,
            clicks,
        });
    }
    Ok(records)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, String> {
    if buf.remaining() < 4 {
        return Err("truncated string length".into());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err("truncated string body".into());
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8".into())
}

/// Encode records into the compact binary form.
pub fn encode(records: &[RawLogRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(records.len() * 48);
    buf.put_u64_le(records.len() as u64);
    for r in records {
        buf.put_u64_le(r.machine_id);
        buf.put_u64_le(r.timestamp);
        put_str(&mut buf, &r.query);
        buf.put_u32_le(r.clicks.len() as u32);
        for c in &r.clicks {
            put_str(&mut buf, &c.url);
            buf.put_u64_le(c.timestamp);
        }
    }
    buf.freeze()
}

/// Decode the binary form produced by [`encode`].
pub fn decode(mut data: Bytes) -> Result<Vec<RawLogRecord>, String> {
    if data.remaining() < 8 {
        return Err("truncated header".into());
    }
    let n = data.get_u64_le() as usize;
    let mut records = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        if data.remaining() < 16 {
            return Err("truncated record".into());
        }
        let machine_id = data.get_u64_le();
        let timestamp = data.get_u64_le();
        let query = get_str(&mut data)?;
        if data.remaining() < 4 {
            return Err("truncated click count".into());
        }
        let n_clicks = data.get_u32_le() as usize;
        let mut clicks = Vec::with_capacity(n_clicks.min(64));
        for _ in 0..n_clicks {
            let url = get_str(&mut data)?;
            if data.remaining() < 8 {
                return Err("truncated click timestamp".into());
            }
            clicks.push(Click {
                url,
                timestamp: data.get_u64_le(),
            });
        }
        records.push(RawLogRecord {
            machine_id,
            timestamp,
            query,
            clicks,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<RawLogRecord> {
        vec![
            RawLogRecord {
                machine_id: 1,
                timestamp: 521,
                query: "kidney stones".into(),
                clicks: vec![
                    Click {
                        url: "www.aaa.com/1".into(),
                        timestamp: 546,
                    },
                    Click {
                        url: "www.bbb.com/2".into(),
                        timestamp: 583,
                    },
                ],
            },
            RawLogRecord {
                machine_id: 1,
                timestamp: 655,
                query: "kidney stone symptoms".into(),
                clicks: vec![],
            },
            RawLogRecord {
                machine_id: 9,
                timestamp: 100,
                query: "nokia n73".into(),
                clicks: vec![Click {
                    url: "www.ccc.com/9".into(),
                    timestamp: 130,
                }],
            },
        ]
    }

    #[test]
    fn last_activity_includes_clicks() {
        let r = &sample()[0];
        assert_eq!(r.last_activity(), 583);
        let r2 = &sample()[1];
        assert_eq!(r2.last_activity(), 655);
    }

    #[test]
    fn tsv_roundtrip() {
        let records = sample();
        let text = to_tsv(&records);
        let parsed = from_tsv(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn tsv_rejects_malformed() {
        assert!(from_tsv("not a record").is_err());
        assert!(from_tsv("1\tx\tq\t0\t").is_err());
        assert!(from_tsv("1\t5\tq\t2\tu,1").is_err()); // count mismatch
    }

    #[test]
    fn tsv_skips_blank_lines() {
        let text = format!("\n{}\n", to_tsv(&sample()));
        assert_eq!(from_tsv(&text).unwrap(), sample());
    }

    #[test]
    fn binary_roundtrip() {
        let records = sample();
        let blob = encode(&records);
        let parsed = decode(blob).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn binary_roundtrip_empty() {
        assert_eq!(decode(encode(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn binary_rejects_truncation() {
        let blob = encode(&sample());
        for cut in [0, 4, 9, blob.len() / 2, blob.len() - 1] {
            let truncated = blob.slice(0..cut);
            assert!(decode(truncated).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn queries_with_commas_survive_tsv() {
        // Click URLs use rsplit_once so commas in URLs would break, but our
        // synthetic URLs never contain commas; queries may though.
        let rec = vec![RawLogRecord {
            machine_id: 2,
            timestamp: 10,
            query: "hotels, cheap".into(),
            clicks: vec![],
        }];
        assert_eq!(from_tsv(&to_tsv(&rec)).unwrap(), rec);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use sqp_common::rng::{Rng, StdRng};

    fn rand_text(rng: &mut StdRng, alphabet: &[u8], min: usize, max: usize) -> String {
        let len = rng.random_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.random_range(0usize..alphabet.len())] as char)
            .collect()
    }

    fn arb_record(rng: &mut StdRng) -> RawLogRecord {
        let n_clicks = rng.random_range(0usize..4);
        RawLogRecord {
            machine_id: rng.random_range(0u64..1000),
            timestamp: rng.random_range(0u64..1_000_000),
            query: rand_text(rng, b"abcdefghij0123456789 ", 1, 30),
            clicks: (0..n_clicks)
                .map(|_| Click {
                    url: rand_text(rng, b"abcdefg./0123456789", 1, 20),
                    timestamp: rng.random_range(0u64..1_000_000),
                })
                .collect(),
        }
    }

    fn arb_records(rng: &mut StdRng) -> Vec<RawLogRecord> {
        let n = rng.random_range(0usize..12);
        (0..n).map(|_| arb_record(rng)).collect()
    }

    #[test]
    fn tsv_roundtrips_arbitrary_records() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(case);
            let records = arb_records(&mut rng);
            let text = to_tsv(&records);
            let parsed = from_tsv(&text).unwrap();
            assert_eq!(parsed, records, "case {case}");
        }
    }

    #[test]
    fn binary_roundtrips_arbitrary_records() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(200 + case);
            let records = arb_records(&mut rng);
            let parsed = decode(encode(&records)).unwrap();
            assert_eq!(parsed, records, "case {case}");
        }
    }

    #[test]
    fn tsv_parser_never_panics_on_garbage() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(400 + case);
            // Fuzz: any text either parses or errors cleanly.
            let input = rand_text(&mut rng, b"abc019\t\n,;.", 0, 200);
            let _ = from_tsv(&input);
        }
    }

    #[test]
    fn binary_decoder_never_panics_on_garbage() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(600 + case);
            let len = rng.random_range(0usize..256);
            let input: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..=255)).collect();
            let _ = decode(Bytes::from(input));
        }
    }

    #[test]
    fn last_activity_is_max_of_timestamps() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(800 + case);
            let r = arb_record(&mut rng);
            let la = r.last_activity();
            assert!(la >= r.timestamp, "case {case}");
            for c in &r.clicks {
                assert!(la >= c.timestamp, "case {case}");
            }
        }
    }
}
