//! # sqp-logsim — search-engine log simulator
//!
//! The paper evaluates on 150 days of proprietary commercial search logs
//! (2.5B sessions). This crate is the faithful synthetic stand-in: it builds
//! a topic-forest vocabulary, simulates users reformulating queries with the
//! paper's seven session patterns, and emits raw click logs in the Table III
//! format, split into a 120-day training epoch and a 30-day test epoch.
//!
//! ```
//! let cfg = sqp_logsim::SimConfig::small(1_000, 200, 7);
//! let logs = sqp_logsim::generate(&cfg);
//! assert_eq!(logs.truth.train_sessions.len(), 1_000);
//! assert!(!logs.train.is_empty());
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod generator;
pub mod patterns;
pub mod record;
pub mod vocab;
pub mod zipf;

pub use config::{SessionConfig, SimConfig, TrafficConfig, VocabConfig};
pub use generator::{generate, GeneratedSession, SimTruth, SimulatedLogs};
pub use patterns::PatternType;
pub use record::{Click, RawLogRecord};
pub use vocab::{Topic, TopicId, Vocabulary};
