//! # sqp-eval — evaluation kit for sequential query prediction
//!
//! Everything §V of the paper measures: NDCG with log-10 discounts
//! (Eq. 11), support-weighted coverage and the Table VI unpredictability
//! reasons, the Figure 2 entropy curve, the §V-H user study driven by a
//! simulated labeler oracle, and the Figure 12 training-time sweep.

#![deny(missing_docs)]

pub mod accuracy;
pub mod coverage;
pub mod entropy;
pub mod labeler;
pub mod metrics;
pub mod ndcg;
pub mod report;
pub mod suite;
pub mod timing;
pub mod user_eval;

pub use accuracy::{evaluate_accuracy, overall_ndcg, AccuracyPoint};
pub use coverage::{
    coverage_by_length, overall_coverage, reason_analysis, CoveragePoint, ReasonCounts,
};
pub use entropy::{entropy_by_context_length, EntropyPoint};
pub use labeler::LabelerOracle;
pub use metrics::{hit_rate, mean_reciprocal_rank};
pub use ndcg::{dcg, ndcg_at, position_rating};
pub use suite::{paper_lineup, quick_lineup, train_models, ModelKind};
pub use timing::{subsample, training_time_sweep, TimingRow};
pub use user_eval::{run_user_eval, MethodUserEval, UserEvalConfig, UserEvalResult};
