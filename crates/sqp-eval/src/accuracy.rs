//! Accuracy evaluation: NDCG@{1,3,5} per context length (Figures 8 and 9).
//!
//! Convention (matching the paper's separate reporting of accuracy and
//! coverage): NDCG is averaged — support-weighted — over the contexts the
//! model *covers*; uncovered contexts are excluded here and accounted for by
//! the coverage metric instead. This is what lets the N-gram model show high
//! accuracy (Fig 8) while its coverage collapses (Fig 11).

use crate::ndcg::ndcg_at;
use sqp_common::QueryId;
use sqp_core::Recommender;
use sqp_sessions::GroundTruth;

/// Accuracy of one model at one context length.
#[derive(Clone, Debug)]
pub struct AccuracyPoint {
    /// Context length (number of past queries).
    pub context_len: usize,
    /// Support-weighted mean NDCG@1 over covered contexts.
    pub ndcg1: f64,
    /// Support-weighted mean NDCG@3.
    pub ndcg3: f64,
    /// Support-weighted mean NDCG@5.
    pub ndcg5: f64,
    /// Distinct covered contexts contributing.
    pub covered_contexts: usize,
    /// Support mass of the covered contexts.
    pub covered_support: u64,
}

/// Evaluate a model over ground truth contexts of lengths `1..=max_len`.
pub fn evaluate_accuracy(
    model: &dyn Recommender,
    gt: &GroundTruth,
    max_len: usize,
) -> Vec<AccuracyPoint> {
    let mut out = Vec::with_capacity(max_len);
    for len in 1..=max_len {
        let mut w1 = 0.0;
        let mut w3 = 0.0;
        let mut w5 = 0.0;
        let mut support = 0u64;
        let mut contexts = 0usize;
        for e in gt.by_length(len) {
            let recs = model.recommend(&e.context, 5);
            if recs.is_empty() {
                continue;
            }
            let predicted: Vec<QueryId> = recs.iter().map(|s| s.query).collect();
            let w = e.support as f64;
            w1 += w * ndcg_at(&predicted, &e.top, 1);
            w3 += w * ndcg_at(&predicted, &e.top, 3);
            w5 += w * ndcg_at(&predicted, &e.top, 5);
            support += e.support;
            contexts += 1;
        }
        let denom = support.max(1) as f64;
        out.push(AccuracyPoint {
            context_len: len,
            ndcg1: w1 / denom,
            ndcg3: w3 / denom,
            ndcg5: w5 / denom,
            covered_contexts: contexts,
            covered_support: support,
        });
    }
    out
}

/// Support-weighted overall NDCG@n across all covered contexts (no length
/// grouping) — a convenient scalar for regression tests.
pub fn overall_ndcg(model: &dyn Recommender, gt: &GroundTruth, n: usize) -> f64 {
    let mut acc = 0.0;
    let mut support = 0u64;
    for e in &gt.entries {
        let recs = model.recommend(&e.context, 5);
        if recs.is_empty() {
            continue;
        }
        let predicted: Vec<QueryId> = recs.iter().map(|s| s.query).collect();
        acc += e.support as f64 * ndcg_at(&predicted, &e.top, n);
        support += e.support;
    }
    if support == 0 {
        0.0
    } else {
        acc / support as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;
    use sqp_core::{Adjacency, Vmm, VmmConfig};
    use sqp_sessions::Aggregated;

    fn corpus() -> Vec<(sqp_common::QuerySeq, u64)> {
        vec![
            (seq(&[0, 1]), 30),
            (seq(&[0, 2]), 10),
            (seq(&[0, 1, 2]), 5),
            (seq(&[3, 0, 1]), 4),
        ]
    }

    fn truth() -> GroundTruth {
        GroundTruth::build(&Aggregated::from_weighted(corpus()), 5)
    }

    #[test]
    fn adjacency_scores_well_on_its_own_distribution() {
        let adj = Adjacency::train(&corpus());
        let pts = evaluate_accuracy(&adj, &truth(), 3);
        assert_eq!(pts.len(), 3);
        // Length-1 contexts: [0] and [3]; Adjacency ranks 1 above 2 for [0],
        // matching the truth: NDCG should be 1.
        assert!(pts[0].ndcg1 > 0.99, "ndcg1 = {}", pts[0].ndcg1);
        assert!(pts[0].covered_contexts >= 2);
    }

    #[test]
    fn vmm_at_least_matches_adjacency_here() {
        let adj = Adjacency::train(&corpus());
        let vmm = Vmm::train(&corpus(), VmmConfig::with_epsilon(0.0));
        let a = overall_ndcg(&adj, &truth(), 5);
        let v = overall_ndcg(&vmm, &truth(), 5);
        assert!(v >= a - 1e-9, "vmm {v} < adj {a}");
    }

    #[test]
    fn uncovered_contexts_are_excluded() {
        // A model covering nothing has zero covered contexts, NDCG 0.
        struct Never;
        impl Recommender for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn recommend(
                &self,
                _: &[sqp_common::QueryId],
                _: usize,
            ) -> Vec<sqp_common::topk::Scored> {
                Vec::new()
            }
            fn memory_bytes(&self) -> usize {
                0
            }
        }
        let pts = evaluate_accuracy(&Never, &truth(), 2);
        for p in &pts {
            assert_eq!(p.covered_contexts, 0);
            assert_eq!(p.ndcg5, 0.0);
        }
        assert_eq!(overall_ndcg(&Never, &truth(), 5), 0.0);
    }

    #[test]
    fn support_weighting_prefers_heavy_contexts() {
        // A model that only answers the heavy context [0] must outscore one
        // that only answers the light context [3,0] at the same accuracy…
        // proxied by comparing covered_support.
        let adj = Adjacency::train(&corpus());
        let pts = evaluate_accuracy(&adj, &truth(), 2);
        assert!(pts[0].covered_support > pts[1].covered_support);
    }
}
