//! NDCG — Eq. (11) of the paper.
//!
//! `N(n) = Z_n Σ_{j=1..n} (2^{r(j)} − 1) / log(1 + j)` with **log base 10**
//! (footnote 2) and positional ratings {5,4,3,2,1} for the top-5 ground-truth
//! continuations; queries outside the top 5 rate 0. `Z_n` normalizes the
//! perfect ranking to 1.

use sqp_common::QueryId;

/// Rating of the ground-truth continuation at 0-based position `pos`:
/// 5, 4, 3, 2, 1, then 0.
pub fn position_rating(pos: usize) -> u32 {
    (5usize.saturating_sub(pos)) as u32
}

fn gain(rating: u32) -> f64 {
    (2f64.powi(rating as i32)) - 1.0
}

fn discount(j_one_based: usize) -> f64 {
    ((1 + j_one_based) as f64).log10()
}

/// Discounted cumulative gain of a rating list at cutoff `n`.
pub fn dcg(ratings: &[u32], n: usize) -> f64 {
    ratings
        .iter()
        .take(n)
        .enumerate()
        .map(|(idx, &r)| gain(r) / discount(idx + 1))
        .sum()
}

/// NDCG@n of `predicted` against the ground-truth `top` list
/// (`(query, frequency)` pairs, best first, at most 5 long).
///
/// Returns 0 when `predicted` is empty or shares nothing with the truth.
pub fn ndcg_at(predicted: &[QueryId], top: &[(QueryId, u64)], n: usize) -> f64 {
    if n == 0 || top.is_empty() {
        return 0.0;
    }
    // Rating assigned by truth position.
    let rating_of = |q: QueryId| -> u32 {
        top.iter()
            .position(|&(t, _)| t == q)
            .map(position_rating)
            .unwrap_or(0)
    };
    let ratings: Vec<u32> = predicted.iter().map(|&q| rating_of(q)).collect();
    let actual = dcg(&ratings, n);
    if actual == 0.0 {
        return 0.0;
    }
    // Ideal: the truth's own ratings in order (5,4,3,… truncated to the
    // number of true continuations).
    let ideal_ratings: Vec<u32> = (0..top.len()).map(position_rating).collect();
    let ideal = dcg(&ideal_ratings, n);
    if ideal == 0.0 {
        return 0.0;
    }
    (actual / ideal).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::QueryId;

    fn q(i: u32) -> QueryId {
        QueryId(i)
    }

    fn truth() -> Vec<(QueryId, u64)> {
        vec![
            (q(10), 50),
            (q(11), 40),
            (q(12), 30),
            (q(13), 20),
            (q(14), 10),
        ]
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let predicted = vec![q(10), q(11), q(12), q(13), q(14)];
        for n in [1, 3, 5] {
            let s = ndcg_at(&predicted, &truth(), n);
            assert!((s - 1.0).abs() < 1e-12, "NDCG@{n} = {s}");
        }
    }

    #[test]
    fn empty_or_disjoint_prediction_scores_zero() {
        assert_eq!(ndcg_at(&[], &truth(), 5), 0.0);
        assert_eq!(ndcg_at(&[q(99), q(98)], &truth(), 5), 0.0);
        assert_eq!(ndcg_at(&[q(10)], &[], 5), 0.0);
    }

    #[test]
    fn top_one_right_beats_top_one_wrong() {
        let good = ndcg_at(&[q(10), q(99)], &truth(), 3);
        let bad = ndcg_at(&[q(99), q(10)], &truth(), 3);
        assert!(good > bad);
        assert!(bad > 0.0);
    }

    #[test]
    fn ndcg_at_one_is_binaryish() {
        // Predicting the best truth query first gives exactly 1.
        assert!((ndcg_at(&[q(10)], &truth(), 1) - 1.0).abs() < 1e-12);
        // Predicting the second-best truth query first gives
        // (2^4-1)/(2^5-1) = 15/31.
        let s = ndcg_at(&[q(11)], &truth(), 1);
        assert!((s - 15.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn log10_discount_is_used() {
        // DCG of ratings [0, 5] at n=2: (2^5-1)/log10(3) = 31/0.4771…
        let d = dcg(&[0, 5], 2);
        assert!((d - 31.0 / (3f64).log10()).abs() < 1e-9);
    }

    #[test]
    fn shorter_truth_normalizes_over_itself() {
        // Only two true continuations: the perfect 2-item ranking is 1.
        let t = vec![(q(1), 9u64), (q(2), 1)];
        let s = ndcg_at(&[q(1), q(2)], &t, 5);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swapping_adjacent_items_lowers_score() {
        let base = ndcg_at(&[q(10), q(11), q(12)], &truth(), 3);
        let swapped = ndcg_at(&[q(11), q(10), q(12)], &truth(), 3);
        assert!(base > swapped);
    }

    #[test]
    fn rating_positions() {
        assert_eq!(position_rating(0), 5);
        assert_eq!(position_rating(4), 1);
        assert_eq!(position_rating(5), 0);
        assert_eq!(position_rating(99), 0);
    }

    #[test]
    fn score_monotone_in_cutoff_for_prefix_hits() {
        // Prediction hits positions 1 and 3 of the truth.
        let p = vec![q(10), q(99), q(12)];
        let s1 = ndcg_at(&p, &truth(), 1);
        let s3 = ndcg_at(&p, &truth(), 3);
        assert!((s1 - 1.0).abs() < 1e-12);
        assert!(s3 < 1.0 && s3 > 0.0);
    }

    #[test]
    fn never_exceeds_one() {
        // Model ranks better than the (frequency-tied) truth order — clamp.
        let t = vec![(q(1), 10u64), (q(2), 10)];
        let s = ndcg_at(&[q(2), q(1)], &t, 5);
        assert!(s <= 1.0);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use sqp_common::rng::{Rng, StdRng};
    use sqp_common::QueryId;

    /// Distinct queries with strictly decreasing frequencies.
    fn arb_truth(rng: &mut StdRng) -> Vec<(QueryId, u64)> {
        let n = rng.random_range(1usize..6);
        let ids: std::collections::BTreeSet<u32> =
            (0..n).map(|_| rng.random_range(0u32..20)).collect();
        ids.into_iter()
            .enumerate()
            .map(|(i, q)| (QueryId(q), 100 - i as u64))
            .collect()
    }

    #[test]
    fn ndcg_is_bounded() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(case);
            let truth = arb_truth(&mut rng);
            let len = rng.random_range(0usize..8);
            let predicted: Vec<QueryId> = (0..len)
                .map(|_| QueryId(rng.random_range(0u32..25)))
                .collect();
            let n = rng.random_range(1usize..6);
            let s = ndcg_at(&predicted, &truth, n);
            assert!((0.0..=1.0).contains(&s), "case {case}: ndcg = {s}");
        }
    }

    #[test]
    fn predicting_the_truth_exactly_scores_one() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(200 + case);
            let truth = arb_truth(&mut rng);
            let n = rng.random_range(1usize..6);
            let predicted: Vec<QueryId> = truth.iter().map(|&(q, _)| q).collect();
            let s = ndcg_at(&predicted, &truth, n);
            assert!((s - 1.0).abs() < 1e-9, "case {case}: ndcg = {s}");
        }
    }

    #[test]
    fn irrelevant_prefix_never_helps() {
        for case in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(400 + case);
            let truth = arb_truth(&mut rng);
            let n = rng.random_range(1usize..6);
            // Prepending a miss before the perfect ranking cannot raise NDCG.
            let perfect: Vec<QueryId> = truth.iter().map(|&(q, _)| q).collect();
            let mut worse = vec![QueryId(999)];
            worse.extend(perfect.iter().copied());
            let s_perfect = ndcg_at(&perfect, &truth, n);
            let s_worse = ndcg_at(&worse, &truth, n);
            assert!(s_worse <= s_perfect + 1e-12, "case {case}");
        }
    }
}
