//! Training-time measurement — Figure 12 of the paper.
//!
//! Each method is trained on growing fractions of the corpus; the paper's
//! claim is linear scaling for every method, with MVMM roughly K× a single
//! VMM (mitigated by parallel component training).

use crate::suite::ModelKind;
use sqp_common::QuerySeq;
use std::time::{Duration, Instant};

/// One sweep row: a corpus fraction and the wall-clock time per method.
#[derive(Clone, Debug)]
pub struct TimingRow {
    /// Fraction of the corpus used.
    pub fraction: f64,
    /// Distinct aggregated sessions in the slice.
    pub unique_sessions: usize,
    /// Session mass in the slice.
    pub session_mass: u64,
    /// `(label, wall time)` per method.
    pub times: Vec<(String, Duration)>,
}

/// Deterministic stride subsample keeping the corpus shape: takes every
/// `1/fraction`-th aggregated session (the list is frequency-sorted, so a
/// stride keeps head and tail proportionally).
pub fn subsample(sessions: &[(QuerySeq, u64)], fraction: f64) -> Vec<(QuerySeq, u64)> {
    assert!((0.0..=1.0).contains(&fraction), "fraction {fraction}");
    if fraction >= 1.0 {
        return sessions.to_vec();
    }
    if fraction <= 0.0 || sessions.is_empty() {
        return Vec::new();
    }
    let want = ((sessions.len() as f64) * fraction).round().max(1.0) as usize;
    let mut out = Vec::with_capacity(want);
    let mut acc = 0f64;
    for s in sessions {
        acc += fraction;
        if acc >= 1.0 {
            acc -= 1.0;
            out.push(s.clone());
        }
    }
    if out.is_empty() {
        out.push(sessions[0].clone());
    }
    out
}

/// Train every kind on every fraction, measuring wall time.
pub fn training_time_sweep(
    sessions: &[(QuerySeq, u64)],
    fractions: &[f64],
    kinds: &[ModelKind],
) -> Vec<TimingRow> {
    let mut rows = Vec::with_capacity(fractions.len());
    for &f in fractions {
        let slice = subsample(sessions, f);
        let mass = slice.iter().map(|(_, c)| c).sum();
        let mut times = Vec::with_capacity(kinds.len());
        for kind in kinds {
            let start = Instant::now();
            let model = kind.train(&slice);
            let elapsed = start.elapsed();
            std::hint::black_box(&model);
            times.push((kind.label(), elapsed));
        }
        rows.push(TimingRow {
            fraction: f,
            unique_sessions: slice.len(),
            session_mass: mass,
            times,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    fn corpus(n: usize) -> Vec<(QuerySeq, u64)> {
        // Unique sequences (the aggregation invariant) so order checks are
        // well-defined.
        (0..n as u32)
            .map(|i| (seq(&[i, (i + 1) % 50, (i * 7) % 50]), 1 + (i as u64 % 5)))
            .collect()
    }

    #[test]
    fn subsample_sizes() {
        let c = corpus(100);
        assert_eq!(subsample(&c, 1.0).len(), 100);
        let half = subsample(&c, 0.5);
        assert!((45..=55).contains(&half.len()), "half = {}", half.len());
        let tiny = subsample(&c, 0.01);
        assert!(!tiny.is_empty());
        assert!(subsample(&c, 0.0).is_empty());
    }

    #[test]
    fn subsample_is_deterministic_and_ordered() {
        let c = corpus(60);
        let a = subsample(&c, 0.3);
        let b = subsample(&c, 0.3);
        assert_eq!(a, b);
        // A subsample of a subsample-compatible fraction keeps corpus order.
        let positions: Vec<usize> = a
            .iter()
            .map(|x| c.iter().position(|y| y == x).unwrap())
            .collect();
        for w in positions.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn sweep_produces_rows_for_all_fractions() {
        let c = corpus(200);
        let kinds = vec![ModelKind::Adjacency, ModelKind::NGram];
        let rows = training_time_sweep(&c, &[0.5, 1.0], &kinds);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.times.len(), 2);
            assert!(row.unique_sessions > 0);
        }
        assert!(rows[0].unique_sessions < rows[1].unique_sessions);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_out_of_range_fraction() {
        subsample(&corpus(10), 1.5);
    }
}
