//! Prediction-entropy analysis — Figure 2 of the paper.
//!
//! For every training context of length L, the base-10 entropy of its
//! next-query distribution is computed; averaging (weighted by context
//! occurrences) over all contexts of each length yields the curve that drops
//! as context grows — the paper's motivation that "the probability of each
//! query conditionally depends on the sequence of past queries as a whole".

use sqp_common::math::entropy_of_counts;
use sqp_common::QuerySeq;
use sqp_core::counts::WindowCounts;

/// `(context length, average prediction entropy, contexts measured)` rows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EntropyPoint {
    /// Context length (number of past queries).
    pub context_len: usize,
    /// Occurrence-weighted mean entropy (base 10).
    pub mean_entropy: f64,
    /// Number of distinct contexts contributing.
    pub contexts: usize,
}

/// Compute the Figure 2 curve over a weighted training corpus.
pub fn entropy_by_context_length(
    sessions: &[(QuerySeq, u64)],
    max_len: usize,
) -> Vec<EntropyPoint> {
    let counts = WindowCounts::build(sessions, Some(max_len));
    let mut acc: Vec<(f64, u64, usize)> = vec![(0.0, 0, 0); max_len + 1];
    for node in counts.candidate_nodes(1) {
        let len = counts.trie().depth(node);
        if len > max_len {
            continue;
        }
        let entry = counts.entry_at(node);
        let weight = entry.next_total();
        let h = entropy_of_counts(entry.next_iter().map(|(_, c)| c));
        acc[len].0 += h * weight as f64;
        acc[len].1 += weight;
        acc[len].2 += 1;
    }
    (1..=max_len)
        .map(|len| EntropyPoint {
            context_len: len,
            mean_entropy: if acc[len].1 == 0 {
                0.0
            } else {
                acc[len].0 / acc[len].1 as f64
            },
            contexts: acc[len].2,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;

    #[test]
    fn paper_java_example_shape() {
        // "Java" alone is ambiguous (60/40 split); with "Indonesia" before
        // it, the split is 9/1 — entropy must drop.
        let corpus = vec![
            (seq(&[0, 1]), 60),   // java -> sun java
            (seq(&[0, 2]), 40),   // java -> java island
            (seq(&[3, 0, 2]), 9), // indonesia -> java -> java island
            (seq(&[3, 0, 1]), 1), // indonesia -> java -> sun java
        ];
        let pts = entropy_by_context_length(&corpus, 2);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].mean_entropy > pts[1].mean_entropy);
        assert!(pts[1].contexts >= 1);
    }

    #[test]
    fn deterministic_continuations_have_zero_entropy() {
        let corpus = vec![(seq(&[0, 1]), 10), (seq(&[2, 3]), 5)];
        let pts = entropy_by_context_length(&corpus, 1);
        assert!(pts[0].mean_entropy.abs() < 1e-12);
        assert_eq!(pts[0].contexts, 2);
    }

    #[test]
    fn uniform_two_way_split_is_log10_two() {
        let corpus = vec![(seq(&[0, 1]), 5), (seq(&[0, 2]), 5)];
        let pts = entropy_by_context_length(&corpus, 1);
        assert!((pts[0].mean_entropy - (2f64).log10()).abs() < 1e-9);
    }

    #[test]
    fn empty_corpus_gives_zero_rows() {
        let pts = entropy_by_context_length(&[], 3);
        assert_eq!(pts.len(), 3);
        for p in pts {
            assert_eq!(p.contexts, 0);
            assert_eq!(p.mean_entropy, 0.0);
        }
    }

    #[test]
    fn curve_decreases_on_simulated_logs() {
        // The headline property of Figure 2 on generator output.
        let logs = sqp_logsim::generate(&sqp_logsim::SimConfig::small(6_000, 100, 9));
        let processed = sqp_sessions::process(&logs, &sqp_sessions::PipelineConfig::default());
        let pts = entropy_by_context_length(&processed.train.aggregated.sessions, 3);
        assert!(
            pts[0].mean_entropy > pts[2].mean_entropy,
            "entropy did not drop: {pts:?}"
        );
    }
}
