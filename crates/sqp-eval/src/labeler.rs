//! The simulated labeler oracle for the user study (§V-H of the paper).
//!
//! The paper asked 30 volunteers whether each predicted query "is appropriate
//! in the context", giving four archetypes of approved predictions:
//! a spelling fix ("youtube" after "youtub"), a semantically related query
//! ("Verizon" after "GE"), a specialization ("Hertz car rental" after
//! "budget car rental"), and a synonym ("New York Times" after "NY Times").
//!
//! Our oracle encodes the same judgments with the simulator's vocabulary as
//! world knowledge: a prediction is approved when it is topically related to
//! the last context query (same topic, ancestor/descendant, sibling, or
//! same-tree within a small hop distance), fixes its spelling, or is an
//! observed popular continuation (the data-centric ground truth).

use sqp_common::dist::levenshtein_str;
use sqp_logsim::{TopicId, Vocabulary};

/// Judgment oracle backed by vocabulary world knowledge.
pub struct LabelerOracle<'a> {
    vocab: &'a Vocabulary,
}

impl<'a> LabelerOracle<'a> {
    /// Wrap a vocabulary.
    pub fn new(vocab: &'a Vocabulary) -> Self {
        Self { vocab }
    }

    /// Resolve a surface to its topic, forgiving small typos (a labeler
    /// recognizes "youtub" as YouTube).
    fn resolve(&self, surface: &str) -> Option<TopicId> {
        if let Some(t) = self.vocab.topic_of_surface(surface) {
            return Some(t);
        }
        // Try cheap single-edit repairs: drop one char / transpose.
        let chars: Vec<char> = surface.chars().collect();
        for i in 0..chars.len() {
            let mut c = chars.clone();
            c.remove(i);
            let cand: String = c.iter().collect();
            if let Some(t) = self.vocab.topic_of_surface(&cand) {
                return Some(t);
            }
        }
        for i in 0..chars.len().saturating_sub(1) {
            let mut c = chars.clone();
            c.swap(i, i + 1);
            let cand: String = c.iter().collect();
            if let Some(t) = self.vocab.topic_of_surface(&cand) {
                return Some(t);
            }
        }
        None
    }

    /// Tree distance between two topics in the same tree (hops up/down),
    /// or `None` when they live in different trees.
    fn tree_distance(&self, a: TopicId, b: TopicId) -> Option<usize> {
        if !self.vocab.same_root(a, b) {
            return None;
        }
        // Walk both up to the root, find the lowest common ancestor.
        let path = |mut t: TopicId| {
            let mut p = vec![t];
            while let Some(parent) = self.vocab.parent(t) {
                p.push(parent);
                t = parent;
            }
            p
        };
        let pa = path(a);
        let pb = path(b);
        for (i, x) in pa.iter().enumerate() {
            if let Some(j) = pb.iter().position(|y| y == x) {
                return Some(i + j);
            }
        }
        None
    }

    /// Would a labeler approve `predicted` as a follow-up to `context_last`?
    pub fn approve(&self, context_last: &str, predicted: &str) -> bool {
        if context_last == predicted {
            // Recommending the query the user just typed is not helpful,
            // but it is "appropriate" (repeated-query pattern): approve.
            return true;
        }
        // Spelling fix: context is a typo of the (known) prediction.
        if self.vocab.topic_of_surface(context_last).is_none()
            && self.vocab.topic_of_surface(predicted).is_some()
            && levenshtein_str(context_last, predicted) <= 2
        {
            return true;
        }
        match (self.resolve(context_last), self.resolve(predicted)) {
            (Some(a), Some(b)) => {
                if a == b {
                    return true; // synonym / same intent
                }
                // Topically close: within 2 hops in the same tree
                // (parent, child, sibling, grandchild…).
                matches!(self.tree_distance(a, b), Some(d) if d <= 2)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_logsim::VocabConfig;

    fn vocab() -> Vocabulary {
        Vocabulary::build(
            &VocabConfig {
                n_roots: 30,
                synonym_frac: 1.0,
                ..VocabConfig::default()
            },
            1234,
        )
    }

    #[test]
    fn approves_specialization_and_generalization() {
        let v = vocab();
        let oracle = LabelerOracle::new(&v);
        let parent = v
            .iter()
            .find(|t| !t.children.is_empty())
            .expect("tree has interior nodes");
        let child = v.topic(parent.children[0]);
        assert!(oracle.approve(&parent.query, &child.query));
        assert!(oracle.approve(&child.query, &parent.query));
    }

    #[test]
    fn approves_siblings() {
        let v = vocab();
        let oracle = LabelerOracle::new(&v);
        let parent = v
            .iter()
            .find(|t| t.children.len() >= 2)
            .expect("tree has branching nodes");
        let a = v.topic(parent.children[0]);
        let b = v.topic(parent.children[1]);
        assert!(oracle.approve(&a.query, &b.query));
    }

    #[test]
    fn approves_synonyms() {
        let v = vocab();
        let oracle = LabelerOracle::new(&v);
        let t = v
            .iter()
            .find(|t| t.synonym.is_some())
            .expect("synonyms assigned");
        assert!(oracle.approve(&t.query, t.synonym.as_ref().unwrap()));
        assert!(oracle.approve(t.synonym.as_ref().unwrap(), &t.query));
    }

    #[test]
    fn approves_spelling_fix() {
        let v = vocab();
        let oracle = LabelerOracle::new(&v);
        let t = v.iter().next().unwrap();
        let mut rng = sqp_common::rng::StdRng::seed_from_u64(5);
        let typo = v.misspell(&t.query, &mut rng);
        assert!(oracle.approve(&typo, &t.query), "{typo} -> {}", t.query);
    }

    #[test]
    fn rejects_unrelated_topics() {
        let v = vocab();
        let oracle = LabelerOracle::new(&v);
        let roots = v.roots();
        let a = v.topic(roots[0]);
        let b = v.topic(roots[1]);
        assert!(!oracle.approve(&a.query, &b.query));
    }

    #[test]
    fn rejects_garbage_predictions() {
        let v = vocab();
        let oracle = LabelerOracle::new(&v);
        let t = v.iter().next().unwrap();
        assert!(!oracle.approve(&t.query, "completely unrelated gibberish"));
    }

    #[test]
    fn rejects_distant_relatives() {
        // A node and its great-grandchild (3 hops) are too far.
        let v = vocab();
        let oracle = LabelerOracle::new(&v);
        let mut found = false;
        for t in v.iter() {
            for &c1 in v.children(t.id) {
                for &c2 in v.children(c1) {
                    for &c3 in v.children(c2) {
                        found = true;
                        assert!(!oracle.approve(&t.query, &v.topic(c3).query));
                    }
                }
            }
        }
        assert!(found, "vocabulary too shallow for this test");
    }

    #[test]
    fn approves_repeat() {
        let v = vocab();
        let oracle = LabelerOracle::new(&v);
        let t = v.iter().next().unwrap();
        assert!(oracle.approve(&t.query, &t.query));
    }
}
