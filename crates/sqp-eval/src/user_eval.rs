//! The user-study protocol of §V-H (Table VIII, Figures 13–14), with the
//! labeler oracle standing in for the paper's 30 volunteers.
//!
//! Step 1: sample test query sequences — 500 per context length 1–4 in the
//! paper — and collect each method's top-5 predictions.
//! Step 2: label every predicted query approved/rejected.
//! Step 3: pool the unique approved queries as the user-centric ground truth
//! and report per-method precision (approved/predicted), recall
//! (approved/pool), and per-position precision.

use crate::labeler::LabelerOracle;
use sqp_common::rng::{Rng, StdRng};
use sqp_common::{FxHashSet, Interner, QueryId};
use sqp_core::Recommender;
use sqp_logsim::Vocabulary;
use sqp_sessions::{GroundTruth, GroundTruthEntry};

/// Protocol parameters (paper defaults).
#[derive(Clone, Debug)]
pub struct UserEvalConfig {
    /// Sequences sampled per context length (paper: 500).
    pub per_length: usize,
    /// Context lengths sampled (paper: 1–4).
    pub lengths: Vec<usize>,
    /// Predictions requested per method (paper: 5).
    pub top_n: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Also approve predictions that appear in the context's data-centric
    /// top-5 ground truth (a labeler would recognize popular continuations).
    pub approve_truth_top: bool,
}

impl Default for UserEvalConfig {
    fn default() -> Self {
        Self {
            per_length: 500,
            lengths: vec![1, 2, 3, 4],
            top_n: 5,
            seed: 42,
            approve_truth_top: true,
        }
    }
}

/// Per-method outcome (one column of Table VIII + Figures 13–14).
#[derive(Clone, Debug)]
pub struct MethodUserEval {
    /// Method display name.
    pub name: String,
    /// Total predicted queries (Table VIII row 1).
    pub predicted: u64,
    /// Approved predicted queries (Table VIII row 2).
    pub approved: u64,
    /// Predictions per rank position (0-based index = position − 1).
    pub position_predicted: Vec<u64>,
    /// Approvals per rank position.
    pub position_approved: Vec<u64>,
}

impl MethodUserEval {
    /// Overall precision (Fig 13a).
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            self.approved as f64 / self.predicted as f64
        }
    }

    /// Recall against the pooled unique approved queries (Fig 13b).
    pub fn recall(&self, pool_size: usize) -> f64 {
        if pool_size == 0 {
            0.0
        } else {
            self.approved as f64 / pool_size as f64
        }
    }

    /// Precision at a 1-based rank position (Fig 14).
    pub fn precision_at_position(&self, pos: usize) -> f64 {
        let idx = pos - 1;
        let p = self.position_predicted.get(idx).copied().unwrap_or(0);
        let a = self.position_approved.get(idx).copied().unwrap_or(0);
        if p == 0 {
            0.0
        } else {
            a as f64 / p as f64
        }
    }
}

/// Full user-study outcome.
#[derive(Clone, Debug)]
pub struct UserEvalResult {
    /// Per-method rows, in the order models were passed.
    pub methods: Vec<MethodUserEval>,
    /// Unique approved queries across all methods (paper: 9,489).
    pub pool_size: usize,
    /// Contexts actually sampled.
    pub sampled_contexts: usize,
}

/// Sample up to `n` items deterministically without replacement.
fn sample_indices(len: usize, n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..len).collect();
    let take = n.min(len);
    for i in 0..take {
        let j = rng.random_range(i..len);
        idx.swap(i, j);
    }
    idx.truncate(take);
    idx
}

/// Run the protocol over trained models.
pub fn run_user_eval(
    models: &[&dyn Recommender],
    gt: &GroundTruth,
    interner: &Interner,
    vocab: &Vocabulary,
    cfg: &UserEvalConfig,
) -> UserEvalResult {
    let oracle = LabelerOracle::new(vocab);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Step 1: sample contexts per length.
    let mut sampled: Vec<&GroundTruthEntry> = Vec::new();
    for &len in &cfg.lengths {
        let pool: Vec<&GroundTruthEntry> = gt.by_length(len).collect();
        for i in sample_indices(pool.len(), cfg.per_length, &mut rng) {
            sampled.push(pool[i]);
        }
    }

    // Steps 2–3: predict, label, pool.
    let mut methods: Vec<MethodUserEval> = models
        .iter()
        .map(|m| MethodUserEval {
            name: m.name().to_owned(),
            predicted: 0,
            approved: 0,
            position_predicted: vec![0; cfg.top_n],
            position_approved: vec![0; cfg.top_n],
        })
        .collect();
    // The pooled ground truth holds unique approved (context, query) pairs —
    // "duplicated queries were removed" in the paper's step 3. A method's
    // approved set is a subset of the pool, so recall is well-defined ≤ 1.
    let mut pool: FxHashSet<(sqp_common::QuerySeq, QueryId)> = FxHashSet::default();

    for e in &sampled {
        let last = *e.context.last().expect("non-empty context");
        let last_str = interner.resolve(last);
        for (mi, model) in models.iter().enumerate() {
            let recs = model.recommend(&e.context, cfg.top_n);
            for (pos, rec) in recs.iter().enumerate() {
                methods[mi].predicted += 1;
                methods[mi].position_predicted[pos] += 1;
                let pred_str = interner.resolve(rec.query);
                let in_truth_top =
                    cfg.approve_truth_top && e.top.iter().any(|&(q, _)| q == rec.query);
                if in_truth_top || oracle.approve(last_str, pred_str) {
                    methods[mi].approved += 1;
                    methods[mi].position_approved[pos] += 1;
                    pool.insert((e.context.clone(), rec.query));
                }
            }
        }
    }

    UserEvalResult {
        methods,
        pool_size: pool.len(),
        sampled_contexts: sampled.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_core::{Adjacency, Cooccurrence, NGram};
    use sqp_sessions::{process, PipelineConfig};

    fn setup() -> (sqp_sessions::ProcessedLogs, sqp_logsim::SimulatedLogs) {
        let logs = sqp_logsim::generate(&sqp_logsim::SimConfig::small(6_000, 4_000, 2025));
        let cfg = PipelineConfig {
            reduction_threshold: 1,
            ..PipelineConfig::default()
        };
        let processed = process(&logs, &cfg);
        (processed, logs)
    }

    #[test]
    fn protocol_end_to_end() {
        let (p, logs) = setup();
        let sessions = &p.train.aggregated.sessions;
        let adj = Adjacency::train(sessions);
        let co = Cooccurrence::train(sessions);
        let ng = NGram::train(sessions);
        let models: Vec<&dyn Recommender> = vec![&adj, &co, &ng];
        let cfg = UserEvalConfig {
            per_length: 100,
            ..UserEvalConfig::default()
        };
        let res = run_user_eval(
            &models,
            &p.ground_truth,
            &p.interner,
            &logs.truth.vocabulary,
            &cfg,
        );
        assert_eq!(res.methods.len(), 3);
        assert!(res.sampled_contexts > 100);
        assert!(res.pool_size > 0);
        for m in &res.methods {
            assert!(m.predicted >= m.approved);
            let prec = m.precision();
            assert!((0.0..=1.0).contains(&prec), "{}: {prec}", m.name);
            // Position counts sum to totals.
            assert_eq!(m.position_predicted.iter().sum::<u64>(), m.predicted);
            assert_eq!(m.position_approved.iter().sum::<u64>(), m.approved);
        }
        // Ordered models should have decent precision on this synthetic data.
        let adj_row = &res.methods[0];
        assert!(
            adj_row.precision() > 0.4,
            "Adj precision {}",
            adj_row.precision()
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let (p, logs) = setup();
        let sessions = &p.train.aggregated.sessions;
        let adj = Adjacency::train(sessions);
        let models: Vec<&dyn Recommender> = vec![&adj];
        let cfg = UserEvalConfig {
            per_length: 50,
            ..UserEvalConfig::default()
        };
        let r1 = run_user_eval(
            &models,
            &p.ground_truth,
            &p.interner,
            &logs.truth.vocabulary,
            &cfg,
        );
        let r2 = run_user_eval(
            &models,
            &p.ground_truth,
            &p.interner,
            &logs.truth.vocabulary,
            &cfg,
        );
        assert_eq!(r1.methods[0].predicted, r2.methods[0].predicted);
        assert_eq!(r1.methods[0].approved, r2.methods[0].approved);
        assert_eq!(r1.pool_size, r2.pool_size);
    }

    #[test]
    fn sample_indices_bounds_and_uniqueness() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = sample_indices(10, 4, &mut rng);
        assert_eq!(idx.len(), 4);
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 4);
        // Requesting more than available returns everything.
        let all = sample_indices(3, 10, &mut rng);
        assert_eq!(all.len(), 3);
        assert!(sample_indices(0, 5, &mut rng).is_empty());
    }

    #[test]
    fn metrics_arithmetic() {
        let m = MethodUserEval {
            name: "x".into(),
            predicted: 7892,
            approved: 4803,
            position_predicted: vec![4803, 3089, 0, 0, 0],
            position_approved: vec![4000, 803, 0, 0, 0],
        };
        // The paper's own Co-occ numbers: 60.86% precision, 50.62% recall.
        assert!((m.precision() - 0.6086).abs() < 1e-4);
        assert!((m.recall(9489) - 0.5062).abs() < 1e-4);
        assert!((m.precision_at_position(1) - 4000.0 / 4803.0).abs() < 1e-12);
        assert_eq!(m.precision_at_position(5), 0.0);
    }
}
