//! Complementary ranking metrics: MRR and hit-rate@k.
//!
//! The paper reports NDCG (Eq. 11) and the user-study precision/recall; MRR
//! and hit-rate are the other two staples of next-item recommendation and
//! make the library useful beyond the reproduction (and give the integration
//! tests a second, independent lens on the same orderings).

use sqp_common::QueryId;
use sqp_core::Recommender;
use sqp_sessions::GroundTruth;

/// Reciprocal rank of the best ground-truth continuation in `predicted`
/// (0 when absent). "Best" = the truth's top-1 query.
pub fn reciprocal_rank(predicted: &[QueryId], truth_top: QueryId) -> f64 {
    predicted
        .iter()
        .position(|&q| q == truth_top)
        .map(|pos| 1.0 / (pos + 1) as f64)
        .unwrap_or(0.0)
}

/// Did any of the ground-truth top-n continuations appear in `predicted`?
pub fn any_hit(predicted: &[QueryId], truth: &[(QueryId, u64)]) -> bool {
    predicted
        .iter()
        .any(|p| truth.iter().any(|&(t, _)| t == *p))
}

/// Support-weighted mean reciprocal rank over covered contexts.
pub fn mean_reciprocal_rank(model: &dyn Recommender, gt: &GroundTruth, k: usize) -> f64 {
    let mut acc = 0.0;
    let mut support = 0u64;
    for e in &gt.entries {
        let recs = model.recommend(&e.context, k);
        if recs.is_empty() {
            continue;
        }
        let predicted: Vec<QueryId> = recs.iter().map(|r| r.query).collect();
        acc += e.support as f64 * reciprocal_rank(&predicted, e.top[0].0);
        support += e.support;
    }
    if support == 0 {
        0.0
    } else {
        acc / support as f64
    }
}

/// Support-weighted hit rate (any truth continuation in the top-k) over
/// covered contexts.
pub fn hit_rate(model: &dyn Recommender, gt: &GroundTruth, k: usize) -> f64 {
    let mut hits = 0u64;
    let mut support = 0u64;
    for e in &gt.entries {
        let recs = model.recommend(&e.context, k);
        if recs.is_empty() {
            continue;
        }
        let predicted: Vec<QueryId> = recs.iter().map(|r| r.query).collect();
        support += e.support;
        if any_hit(&predicted, &e.top) {
            hits += e.support;
        }
    }
    if support == 0 {
        0.0
    } else {
        hits as f64 / support as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;
    use sqp_core::Adjacency;
    use sqp_sessions::Aggregated;

    fn q(i: u32) -> QueryId {
        QueryId(i)
    }

    #[test]
    fn reciprocal_rank_positions() {
        assert_eq!(reciprocal_rank(&[q(5)], q(5)), 1.0);
        assert_eq!(reciprocal_rank(&[q(1), q(5)], q(5)), 0.5);
        assert!((reciprocal_rank(&[q(1), q(2), q(5)], q(5)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(reciprocal_rank(&[q(1), q(2)], q(5)), 0.0);
        assert_eq!(reciprocal_rank(&[], q(5)), 0.0);
    }

    #[test]
    fn any_hit_logic() {
        let truth = vec![(q(1), 5u64), (q(2), 3)];
        assert!(any_hit(&[q(9), q(2)], &truth));
        assert!(!any_hit(&[q(9), q(8)], &truth));
        assert!(!any_hit(&[], &truth));
    }

    #[test]
    fn mrr_and_hit_rate_on_trained_model() {
        let corpus = vec![(seq(&[0, 1]), 10), (seq(&[0, 2]), 5), (seq(&[3, 4]), 2)];
        let adj = Adjacency::train(&corpus);
        let gt = GroundTruth::build(&Aggregated::from_weighted(corpus), 5);
        // Adjacency reproduces its own training distribution perfectly.
        assert!((mean_reciprocal_rank(&adj, &gt, 5) - 1.0).abs() < 1e-12);
        assert!((hit_rate(&adj, &gt, 5) - 1.0).abs() < 1e-12);
        // With k = 1 the second continuation of [0] cannot be hit, but the
        // top one can: MRR@1 stays 1 on covered contexts.
        assert!((mean_reciprocal_rank(&adj, &gt, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_ground_truth() {
        let corpus = vec![(seq(&[0, 1]), 1)];
        let adj = Adjacency::train(&corpus);
        let empty = GroundTruth::build(&Aggregated::default(), 5);
        assert_eq!(mean_reciprocal_rank(&adj, &empty, 5), 0.0);
        assert_eq!(hit_rate(&adj, &empty, 5), 0.0);
    }

    #[test]
    fn orderings_agree_with_ndcg_on_synthetic_corpus() {
        // A model ranking the truth top-1 first must dominate one ranking it
        // last, under both NDCG and MRR.
        let corpus = vec![(seq(&[0, 1]), 8), (seq(&[0, 2]), 4)];
        let gt = GroundTruth::build(&Aggregated::from_weighted(corpus.clone()), 5);
        let adj = Adjacency::train(&corpus);
        let mrr = mean_reciprocal_rank(&adj, &gt, 5);
        let ndcg = crate::overall_ndcg(&adj, &gt, 5);
        assert!(mrr > 0.9 && ndcg > 0.9);
    }
}
