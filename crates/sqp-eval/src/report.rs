//! Plain-text table and series rendering for the experiment binaries.
//!
//! Experiments print the same rows/series the paper's tables and figures
//! report; these helpers keep the output aligned and uniform.

/// Render an aligned text table with a title row.
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep_len = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);
    out.push_str(&"=".repeat(title.len().max(sep_len.min(100))));
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(sep_len.min(100)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render an `(x, y)` series as gnuplot-style lines under a header —
/// the "figure" output format.
pub fn render_series(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# series: {name}\n");
    for (x, y) in points {
        out.push_str(&format!("{x}\t{y:.6}\n"));
    }
    out
}

/// Format a fraction as a percentage with one decimal ("60.5%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a float with 4 decimals (NDCG convention).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a `Duration` in milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Convert string slices to owned header vectors.
pub fn headers(cols: &[&str]) -> Vec<String> {
    cols.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            "Demo",
            &headers(&["model", "ndcg"]),
            &[
                vec!["Adj.".into(), "0.41".into()],
                vec!["MVMM".into(), "0.62".into()],
            ],
        );
        assert!(t.contains("Demo"));
        assert!(t.contains("model"));
        let lines: Vec<&str> = t.lines().collect();
        // Header and data rows have the same column boundary.
        let header_pipe = lines[2].find('|').unwrap();
        let row_pipe = lines[4].find('|').unwrap();
        assert_eq!(header_pipe, row_pipe);
    }

    #[test]
    fn series_lines() {
        let s = render_series("coverage", &[(1.0, 0.5), (2.0, 0.25)]);
        assert!(s.starts_with("# series: coverage"));
        assert!(s.contains("1\t0.500000"));
        assert!(s.contains("2\t0.250000"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.605), "60.5%");
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.0");
    }

    #[test]
    fn table_handles_empty_rows() {
        let t = render_table("Empty", &headers(&["a"]), &[]);
        assert!(t.contains("Empty"));
        assert!(t.contains('a'));
    }
}
