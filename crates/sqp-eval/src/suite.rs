//! Standard model suite: the five methods of the paper's benchmark, plus
//! helpers to train any subset uniformly.

use sqp_core::{
    Adjacency, Cooccurrence, Mvmm, MvmmConfig, NGram, Recommender, Vmm, VmmConfig, WeightedSessions,
};

/// A trainable model kind (the label + configuration, no data).
#[derive(Clone, Debug)]
pub enum ModelKind {
    /// Pair-wise adjacency baseline.
    Adjacency,
    /// Pair-wise co-occurrence baseline.
    Cooccurrence,
    /// Naive variable-length N-gram.
    NGram,
    /// A single VMM with the given config.
    Vmm(VmmConfig),
    /// The mixture model.
    Mvmm(MvmmConfig),
}

impl ModelKind {
    /// Display label (matches the trained model's `name()`).
    pub fn label(&self) -> String {
        match self {
            ModelKind::Adjacency => "Adj.".into(),
            ModelKind::Cooccurrence => "Co-occ.".into(),
            ModelKind::NGram => "N-gram".into(),
            ModelKind::Vmm(c) => c.display_name(),
            ModelKind::Mvmm(_) => "MVMM".into(),
        }
    }

    /// Train this kind on weighted sessions.
    pub fn train(&self, sessions: &WeightedSessions) -> Box<dyn Recommender> {
        match self {
            ModelKind::Adjacency => Box::new(Adjacency::train(sessions)),
            ModelKind::Cooccurrence => Box::new(Cooccurrence::train(sessions)),
            ModelKind::NGram => Box::new(NGram::train(sessions)),
            ModelKind::Vmm(c) => Box::new(Vmm::train(sessions, *c)),
            ModelKind::Mvmm(c) => Box::new(Mvmm::train(sessions, c)),
        }
    }
}

/// The paper's §V-D line-up: two pair-wise baselines, the N-gram, three
/// representative VMMs (ε = 0.0, 0.05, 0.1) and the 11-component MVMM.
pub fn paper_lineup() -> Vec<ModelKind> {
    vec![
        ModelKind::Adjacency,
        ModelKind::Cooccurrence,
        ModelKind::NGram,
        ModelKind::Vmm(VmmConfig::with_epsilon(0.0)),
        ModelKind::Vmm(VmmConfig::with_epsilon(0.05)),
        ModelKind::Vmm(VmmConfig::with_epsilon(0.1)),
        ModelKind::Mvmm(MvmmConfig::epsilon_sweep()),
    ]
}

/// A faster line-up for tests and smoke runs (3-component MVMM).
pub fn quick_lineup() -> Vec<ModelKind> {
    vec![
        ModelKind::Adjacency,
        ModelKind::Cooccurrence,
        ModelKind::NGram,
        ModelKind::Vmm(VmmConfig::with_epsilon(0.05)),
        ModelKind::Mvmm(MvmmConfig::small()),
    ]
}

/// Train every kind, returning `(label, model)` pairs.
pub fn train_models(
    kinds: &[ModelKind],
    sessions: &WeightedSessions,
) -> Vec<(String, Box<dyn Recommender>)> {
    kinds
        .iter()
        .map(|k| (k.label(), k.train(sessions)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_core::toy::toy_corpus;

    #[test]
    fn labels_are_unique_in_paper_lineup() {
        let labels: std::collections::HashSet<String> =
            paper_lineup().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), paper_lineup().len());
    }

    #[test]
    fn all_kinds_train_on_toy_corpus() {
        let corpus = toy_corpus();
        for kind in quick_lineup() {
            let model = kind.train(&corpus);
            assert_eq!(model.name(), kind.label());
            // All models can answer for context [q0] on the toy corpus.
            let recs = model.recommend(&sqp_common::seq(&[0]), 5);
            assert!(!recs.is_empty(), "{} returned nothing", kind.label());
        }
    }

    #[test]
    fn train_models_preserves_order() {
        let corpus = toy_corpus();
        let kinds = quick_lineup();
        let trained = train_models(&kinds, &corpus);
        assert_eq!(trained.len(), kinds.len());
        for ((label, model), kind) in trained.iter().zip(&kinds) {
            assert_eq!(label, &kind.label());
            assert_eq!(model.name(), kind.label());
        }
    }
}
