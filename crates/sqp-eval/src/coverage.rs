//! Coverage evaluation (Figures 10–11) and the unpredictability-reason
//! breakdown (Table VI).
//!
//! Coverage is the support-weighted fraction of test contexts for which a
//! model can produce any recommendation.

use sqp_common::FxHashMap;
use sqp_core::{NGram, Recommender};
use sqp_sessions::{GroundTruth, QueryTrainingIndex, UnpredictableReason};

/// Coverage of one model at one context length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoveragePoint {
    /// Context length.
    pub context_len: usize,
    /// Support mass of covered contexts.
    pub covered_support: u64,
    /// Total support mass at this length.
    pub total_support: u64,
}

impl CoveragePoint {
    /// Covered fraction in \[0,1\].
    pub fn fraction(&self) -> f64 {
        if self.total_support == 0 {
            0.0
        } else {
            self.covered_support as f64 / self.total_support as f64
        }
    }
}

/// Coverage per context length `1..=max_len`.
pub fn coverage_by_length(
    model: &dyn Recommender,
    gt: &GroundTruth,
    max_len: usize,
) -> Vec<CoveragePoint> {
    let mut out = Vec::with_capacity(max_len);
    for len in 1..=max_len {
        let mut covered = 0u64;
        let mut total = 0u64;
        for e in gt.by_length(len) {
            total += e.support;
            if model.covers(&e.context) {
                covered += e.support;
            }
        }
        out.push(CoveragePoint {
            context_len: len,
            covered_support: covered,
            total_support: total,
        });
    }
    out
}

/// Overall support-weighted coverage (Figure 10's single bar per method).
pub fn overall_coverage(model: &dyn Recommender, gt: &GroundTruth) -> f64 {
    let mut covered = 0u64;
    let mut total = 0u64;
    for e in &gt.entries {
        total += e.support;
        if model.covers(&e.context) {
            covered += e.support;
        }
    }
    if total == 0 {
        0.0
    } else {
        covered as f64 / total as f64
    }
}

/// Reason counts for one model family (Table VI, measured).
#[derive(Clone, Debug, Default)]
pub struct ReasonCounts {
    /// Support-weighted count per reason.
    pub counts: FxHashMap<UnpredictableReason, u64>,
    /// Support mass of covered (predictable) contexts.
    pub covered: u64,
    /// Total support mass.
    pub total: u64,
}

impl ReasonCounts {
    fn add(&mut self, reason: Option<UnpredictableReason>, support: u64) {
        self.total += support;
        match reason {
            None => self.covered += support,
            Some(r) => *self.counts.entry(r).or_insert(0) += support,
        }
    }

    /// Support-weighted count of a reason.
    pub fn get(&self, r: UnpredictableReason) -> u64 {
        self.counts.get(&r).copied().unwrap_or(0)
    }
}

/// Measured Table VI: for each model family, why test contexts were
/// unpredictable. The *current query* is the last query of each context; the
/// N-gram additionally fails when the full context is not a trained state.
pub fn reason_analysis(
    gt: &GroundTruth,
    index: &QueryTrainingIndex,
    ngram: &NGram,
) -> Vec<(&'static str, ReasonCounts)> {
    let mut cooc = ReasonCounts::default();
    let mut adj = ReasonCounts::default();
    let mut vmm = ReasonCounts::default();
    let mut ng = ReasonCounts::default();

    for e in &gt.entries {
        let q = *e.context.last().expect("contexts are non-empty");
        let s = e.support;
        cooc.add(index.classify_cooccurrence(q), s);
        let ordered = index.classify(q);
        adj.add(ordered, s);
        vmm.add(ordered, s); // VMM/MVMM coverage is structurally Adjacency's
        let ngram_reason = match ordered {
            Some(r) => Some(r),
            None if !ngram.has_state(&e.context) => Some(UnpredictableReason::ContextNotTrained),
            None => None,
        };
        ng.add(ngram_reason, s);
    }

    vec![
        ("Co-occ.", cooc),
        ("Adj.", adj),
        ("VMM/MVMM", vmm),
        ("N-gram", ng),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_common::seq;
    use sqp_core::{Adjacency, Cooccurrence, Vmm, VmmConfig};
    use sqp_sessions::Aggregated;

    fn train_corpus() -> Vec<(sqp_common::QuerySeq, u64)> {
        vec![
            (seq(&[0, 1]), 10), // 0 followed; 1 last-only
            (seq(&[2]), 5),     // singleton-only
        ]
    }

    fn test_truth() -> GroundTruth {
        // Test contexts: [0] (covered by Adj), [1] (last-only), [2]
        // (singleton-only), [7] (new query), [0,1] length-2.
        GroundTruth::build(
            &Aggregated::from_weighted(vec![
                (seq(&[0, 1]), 8),
                (seq(&[1, 0]), 4),
                (seq(&[2, 0]), 2),
                (seq(&[7, 0]), 1),
                (seq(&[0, 1, 0]), 1),
            ]),
            5,
        )
    }

    #[test]
    fn coverage_numbers() {
        let adj = Adjacency::train(&train_corpus());
        let gt = test_truth();
        // Length-1 contexts and supports: [0]:9, [1]:4, [2]:2, [7]:1 → only
        // [0] covered ⇒ 9/16.
        let pts = coverage_by_length(&adj, &gt, 2);
        assert_eq!(pts[0].total_support, 16);
        assert_eq!(pts[0].covered_support, 9);
        assert!((pts[0].fraction() - 9.0 / 16.0).abs() < 1e-12);
        // Length-2 context [0,1]: last query 1 is never followed ⇒ uncovered.
        assert_eq!(pts[1].covered_support, 0);
    }

    #[test]
    fn cooccurrence_covers_more() {
        let adj = Adjacency::train(&train_corpus());
        let co = Cooccurrence::train(&train_corpus());
        let gt = test_truth();
        assert!(overall_coverage(&co, &gt) > overall_coverage(&adj, &gt));
    }

    #[test]
    fn vmm_coverage_equals_adjacency() {
        // Fig 10's observation, verified end-to-end.
        let adj = Adjacency::train(&train_corpus());
        let vmm = Vmm::train(&train_corpus(), VmmConfig::with_epsilon(0.05));
        let gt = test_truth();
        let a = coverage_by_length(&adj, &gt, 2);
        let v = coverage_by_length(&vmm, &gt, 2);
        assert_eq!(a, v);
    }

    #[test]
    fn reason_table_structure() {
        let gt = test_truth();
        let index =
            sqp_sessions::QueryTrainingIndex::build(&Aggregated::from_weighted(train_corpus()), 3);
        let ngram = sqp_core::NGram::train(&train_corpus());
        let rows = reason_analysis(&gt, &index, &ngram);
        assert_eq!(rows.len(), 4);
        use UnpredictableReason::*;

        let cooc = &rows[0].1;
        // Co-occ fails only on new ([7]:1) and singleton ([2]:2) queries.
        assert_eq!(cooc.get(NewQuery), 1);
        assert_eq!(cooc.get(OnlySingletonSessions), 2);
        assert_eq!(cooc.get(OnlyLastPosition), 0);
        // Contexts ending in 1 are covered for Co-occ: [1]:4 and [0,1]:1,
        // plus [0]:9 ⇒ covered = 14.
        assert_eq!(cooc.covered, 14);

        let adj = &rows[1].1;
        assert_eq!(adj.get(OnlyLastPosition), 5); // [1]:4 + [0,1]:1
        assert_eq!(adj.covered, 9);

        let ng = &rows[3].1;
        // N-gram additionally drops covered contexts that are not trained
        // prefix states: [0] is a state; nothing else qualifies.
        assert_eq!(ng.covered + ng.counts.values().sum::<u64>(), ng.total);
        assert!(ng.covered <= adj.covered);
        assert!(ng.get(ContextNotTrained) > 0 || ng.covered == adj.covered);
    }

    #[test]
    fn empty_ground_truth() {
        let adj = Adjacency::train(&train_corpus());
        let gt = GroundTruth::build(&Aggregated::default(), 5);
        assert_eq!(overall_coverage(&adj, &gt), 0.0);
        let pts = coverage_by_length(&adj, &gt, 2);
        assert_eq!(pts[0].fraction(), 0.0);
    }
}
