//! Session handoff coverage: the export/import primitives under the exact
//! conditions a live membership change produces.
//!
//! The unit tests in `session.rs` pin the basic semantics; this suite
//! covers the edges that decide whether a handoff is *correct*:
//!
//! * capacity mismatch — an exported window larger than the destination
//!   ring truncates to the **newest** queries (the suffix is what
//!   VMM-family models match on);
//! * the 30-minute rule at its exact boundary — a session idle for
//!   precisely the cutoff still moves, one second more and it is skipped,
//!   and the carried `last_seen` means the clock keeps running on the new
//!   home from where the old home left it;
//! * idle sessions are skipped and accounted, not silently dropped;
//! * an import racing a live `track` on the same stripe — the newest-wins
//!   rule means a resident session that advanced past the export can
//!   never be clobbered by it, no matter the interleaving.

use sqp_serve::{SessionExport, SessionTracker, TrackerConfig};
use std::sync::Arc;

#[test]
fn import_truncates_to_destination_capacity_keeping_newest() {
    let src = SessionTracker::new(TrackerConfig {
        context_capacity: 8,
        ..TrackerConfig::default()
    });
    for (i, q) in ["q1", "q2", "q3", "q4", "q5"].iter().enumerate() {
        src.track(1, q, 100 + i as u64);
    }
    let batch = src.export_sessions(110, |_| true);
    assert_eq!(
        batch.sessions[0].queries,
        vec!["q1", "q2", "q3", "q4", "q5"]
    );

    // A destination with a smaller window keeps the newest suffix.
    let dst = SessionTracker::new(TrackerConfig {
        context_capacity: 2,
        ..TrackerConfig::default()
    });
    assert!(dst.import_session(&batch.sessions[0]));
    assert_eq!(dst.context(1, 110), vec!["q4", "q5"]);

    // And the handed-off session *continues* — tracking on the new home
    // appends, it does not reset (the whole point of the handoff).
    let out = dst.track_existing(1, "q6", 120).expect("live continuation");
    assert!(!out.new_session, "handoff must not reset the session");
    assert_eq!(dst.context(1, 120), vec!["q5", "q6"]);
}

#[test]
fn export_respects_the_idle_boundary_exactly() {
    let cfg = TrackerConfig {
        idle_cutoff_secs: 60,
        ..TrackerConfig::default()
    };
    let src = SessionTracker::new(cfg);
    src.track(1, "edge", 100); // last_seen = 100

    // Idle for exactly the cutoff: still a live session, still exported.
    let batch = src.export_sessions(160, |_| true);
    assert_eq!(batch.sessions.len(), 1);
    assert_eq!(batch.skipped_idle, 0);

    // One second past: dead under the 30-minute rule, skipped and
    // accounted.
    let batch = src.export_sessions(161, |_| true);
    assert!(batch.sessions.is_empty());
    assert_eq!(batch.skipped_idle, 1);
}

#[test]
fn carried_last_seen_keeps_the_idle_clock_running_on_the_new_home() {
    let cfg = TrackerConfig {
        idle_cutoff_secs: 60,
        ..TrackerConfig::default()
    };
    let src = SessionTracker::new(cfg);
    let dst = SessionTracker::new(cfg);
    src.track(1, "a", 100);

    // Export at 130: the session is 30 seconds into its idle budget.
    let batch = src.export_sessions(130, |_| true);
    assert_eq!(batch.sessions[0].last_seen, 100);
    assert!(dst.import_session(&batch.sessions[0]));

    // On the new home the budget did NOT reset at import time: the
    // session expires at 100 + 60, not 130 + 60.
    assert_eq!(dst.context(1, 160), vec!["a"]);
    assert!(dst.context(1, 161).is_empty());
    assert_eq!(
        dst.track_existing(1, "b", 161),
        None,
        "an expired handed-off session must not continue"
    );
}

#[test]
fn filter_selects_exactly_the_moved_set() {
    let src = SessionTracker::new(TrackerConfig {
        idle_cutoff_secs: 1_000,
        ..TrackerConfig::default()
    });
    for u in 0..20 {
        src.track(u, "q", 100);
    }
    // Only even users move (stand-in for "users the new ring routes
    // elsewhere").
    let batch = src.export_sessions(100, |u| u % 2 == 0);
    let users: Vec<u64> = batch.sessions.iter().map(|s| s.user).collect();
    assert_eq!(users, (0..20).filter(|u| u % 2 == 0).collect::<Vec<_>>());
    assert_eq!(batch.skipped_idle, 0);
    // Copy semantics: nothing left the source.
    assert_eq!(src.active_sessions(), 20);
}

#[test]
fn import_racing_a_live_track_on_the_same_stripe_never_clobbers() {
    // One stripe: the racing track and import contend on the same lock,
    // which is the worst case a handoff import can hit.
    let cfg = TrackerConfig {
        shards: 1,
        idle_cutoff_secs: u64::MAX / 2,
        ..TrackerConfig::default()
    };
    let t = Arc::new(SessionTracker::new(cfg));
    t.track(1, "seed", 1_000);
    let stale = t.export_sessions(1_000, |u| u == 1).sessions.remove(0);
    assert_eq!(stale.last_seen, 1_000);

    std::thread::scope(|scope| {
        // The session keeps advancing on its (still-)home stripe...
        let tracker = Arc::clone(&t);
        scope.spawn(move || {
            for i in 0..5_000u64 {
                tracker.track(1, "live", 1_001 + i);
            }
        });
        // ...while the stale export is hammered at it. Every attempt must
        // lose: the resident `last_seen` is already >= the export's.
        let tracker = Arc::clone(&t);
        scope.spawn(move || {
            for _ in 0..5_000 {
                assert!(
                    !tracker.import_session(&stale),
                    "a stale import must never clobber a session that advanced"
                );
            }
        });
        // Meanwhile imports of *other* users interleave on the same
        // stripe and must all land exactly once.
        let tracker = Arc::clone(&t);
        scope.spawn(move || {
            for u in 2..=100u64 {
                let export = SessionExport {
                    user: u,
                    queries: vec!["moved".into()],
                    last_seen: 2_000,
                };
                assert!(tracker.import_session(&export));
            }
        });
    });

    // User 1's live continuation survived intact and the gauge is exact.
    let context = t.context(1, 10_000);
    assert_eq!(context.last().map(String::as_str), Some("live"));
    assert!(!context.iter().any(|q| q == "seed" && context.len() == 1));
    assert_eq!(t.active_sessions(), 100);
    assert_eq!(t.context(50, 10_000), vec!["moved"]);
}
