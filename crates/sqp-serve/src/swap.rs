//! Atomic publication cell for shared immutable values.
//!
//! The serving path needs the `arc-swap` idiom without the crate: many
//! reader threads continuously [`load`](Swap::load) the current value while
//! a trainer occasionally [`store`](Swap::store)s a replacement. Readers
//! receive an [`Arc`] handle, so a value being replaced stays alive until
//! the last in-flight request drops it — publication never blocks serving,
//! and a reader can never observe half of one value and half of another.
//!
//! The cell is a pointer-sized critical section: the lock is held only for
//! the duration of an `Arc` clone (load) or pointer swap (store), never
//! while a model is consulted. Uncontended, a load is one atomic
//! acquire/release pair on the lock plus one reference-count increment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A hot-swappable handle to a shared immutable value.
///
/// Semantically an atomic `Arc<T>` cell with a monotonically increasing
/// generation counter. Every successful [`store`](Swap::store) bumps the
/// generation, letting callers cheaply detect "has the model changed since
/// I last looked?" without loading the value.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sqp_serve::Swap;
///
/// let cell = Swap::new(Arc::new("v1"));
/// let reader = cell.load();          // old handle stays valid…
/// cell.store(Arc::new("v2"));        // …across a publication
/// assert_eq!(*reader, "v1");
/// assert_eq!(*cell.load(), "v2");
/// assert_eq!(cell.generation(), 1);
/// ```
#[derive(Debug)]
pub struct Swap<T> {
    current: RwLock<Arc<T>>,
    generation: AtomicU64,
}

impl<T> Swap<T> {
    /// Wrap an initial value (generation 0).
    pub fn new(value: Arc<T>) -> Self {
        Self {
            current: RwLock::new(value),
            generation: AtomicU64::new(0),
        }
    }

    /// Clone out a handle to the current value.
    ///
    /// The handle remains valid — and the value alive — even if a
    /// [`store`](Swap::store) replaces the cell contents immediately after.
    pub fn load(&self) -> Arc<T> {
        // Poison recovery: the cell holds a bare `Arc<T>`, and both writers
        // replace it in a single assignment — there is no intermediate state
        // a panic could tear, so a poisoned lock still guards a valid value.
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Publish a replacement value, returning the new generation.
    ///
    /// Readers that loaded before the store keep serving the old value;
    /// readers that load after get the new one. There is no intermediate
    /// state.
    pub fn store(&self, value: Arc<T>) -> u64 {
        // Poison recovery: see `load` — the guarded state cannot be torn.
        let mut slot = self.current.write().unwrap_or_else(PoisonError::into_inner);
        *slot = value;
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Publish a replacement and return the previous value.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        // Poison recovery: see `load` — the guarded state cannot be torn.
        let mut slot = self.current.write().unwrap_or_else(PoisonError::into_inner);
        let old = std::mem::replace(&mut *slot, value);
        self.generation.fetch_add(1, Ordering::AcqRel);
        old
    }

    /// Number of publications so far (0 until the first [`store`](Swap::store)).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_store_roundtrip() {
        let cell = Swap::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.generation(), 0);
        assert_eq!(cell.store(Arc::new(2)), 1);
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn swap_returns_previous() {
        let cell = Swap::new(Arc::new("a"));
        let old = cell.swap(Arc::new("b"));
        assert_eq!(*old, "a");
        assert_eq!(*cell.load(), "b");
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn old_handles_survive_publication() {
        let cell = Swap::new(Arc::new(vec![1, 2, 3]));
        let held = cell.load();
        cell.store(Arc::new(vec![4]));
        assert_eq!(*held, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![4]);
    }

    #[test]
    fn concurrent_loads_during_stores() {
        let cell = Arc::new(Swap::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        // Published values only move forward.
                        assert!(v >= last, "went backwards: {last} -> {v}");
                        last = v;
                    }
                });
            }
            for gen in 1..=1000u64 {
                cell.store(Arc::new(gen));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.generation(), 1000);
    }
}
