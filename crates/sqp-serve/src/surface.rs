//! [`ServeSurface`]: the one trait every serving tier speaks.
//!
//! Three layers sit on top of a serving tier and none of them should care
//! whether the tier is a single [`ServeEngine`] or a replicated
//! `RouterEngine` (`sqp-router` implements this trait for it):
//!
//! * the **network front-end** (`sqp-net`) translates wire frames into
//!   these calls — including the admission-controlled `try_*` forms, whose
//!   typed [`Overloaded`] rejection becomes a wire-level shed reply;
//! * the **stress harness** (`sqp-bench::serve_loop`) drives byte-identical
//!   seeded traffic through any implementation so two tiers' reports are
//!   directly comparable;
//! * **operations** polls [`stats`](ServeSurface::stats) /
//!   [`generation`](ServeSurface::generation), which implementations keep
//!   lock-free so a poller never contends with traffic.
//!
//! The trait requires `Send + Sync`: a surface is always shared across
//! threads (worker pools, reader threads, stats pollers), and requiring it
//! here turns a accidentally-non-`Sync` implementation into a compile
//! error at `impl` time rather than a usage error at spawn time.

use crate::engine::{EngineStats, Overloaded, ServeEngine, SuggestRequest};
use crate::session::TrackOutcome;
use crate::snapshot::{ModelSnapshot, Suggestion};
use std::sync::Arc;

/// The operations a serving tier exposes to front-ends, harnesses, and
/// operators — the common surface of [`ServeEngine`] and `RouterEngine`.
///
/// Admission: the `try_*` forms shed with [`Overloaded`] when the tier's
/// in-flight budget is exhausted; the plain forms never shed. A network
/// front-end uses `try_*` so overload turns into a typed wire reply
/// instead of a stalled connection.
pub trait ServeSurface: Send + Sync {
    /// Record `query` for `user` at `now` without suggesting.
    fn track(&self, user: u64, query: &str, now: u64) -> TrackOutcome;

    /// Record `query` for `user` and suggest against the updated context.
    fn track_and_suggest(&self, user: u64, query: &str, k: usize, now: u64) -> Vec<Suggestion>;

    /// Admission-controlled [`track_and_suggest`](Self::track_and_suggest).
    fn try_track_and_suggest(
        &self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded>;

    /// Admission-controlled suggestion against `user`'s tracked session.
    fn try_suggest(&self, user: u64, k: usize, now: u64) -> Result<Vec<Suggestion>, Overloaded>;

    /// Batched suggestion in request order.
    fn suggest_batch(&self, requests: &[SuggestRequest], now: u64) -> Vec<Vec<Suggestion>>;

    /// Admission-controlled [`suggest_batch`](Self::suggest_batch). The
    /// batch is all-or-nothing: if any involved replica's budget is
    /// exhausted the whole call sheds, so a caller never has to merge
    /// partial answers with partial sheds.
    fn try_suggest_batch(
        &self,
        requests: &[SuggestRequest],
        now: u64,
    ) -> Result<Vec<Vec<Suggestion>>, Overloaded>;

    /// Drop idle sessions; returns how many.
    fn evict_idle(&self, now: u64) -> usize;

    /// Publish a new snapshot to the whole surface (every replica, for a
    /// tier). Returns the surface's fully-propagated generation after the
    /// publish.
    fn publish(&self, snapshot: Arc<ModelSnapshot>) -> u64;

    /// The surface's fully-propagated generation (minimum across replicas).
    fn generation(&self) -> u64;

    /// Lock-free counters and gauges, aggregated across replicas for a
    /// tier (`publishes` reports the fully-propagated generation, matching
    /// [`generation`](Self::generation)). This is what a wire-level stats
    /// endpoint serves, so it must stay cheap enough to poll per request.
    fn stats(&self) -> EngineStats;

    /// Sessions currently resident.
    fn active_sessions(&self) -> usize;

    /// Total individual suggestions computed.
    fn suggests_total(&self) -> u64 {
        self.stats().suggests
    }
}

impl ServeSurface for ServeEngine {
    fn track(&self, user: u64, query: &str, now: u64) -> TrackOutcome {
        ServeEngine::track(self, user, query, now)
    }
    fn track_and_suggest(&self, user: u64, query: &str, k: usize, now: u64) -> Vec<Suggestion> {
        ServeEngine::track_and_suggest(self, user, query, k, now)
    }
    fn try_track_and_suggest(
        &self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        ServeEngine::try_track_and_suggest(self, user, query, k, now)
    }
    fn try_suggest(&self, user: u64, k: usize, now: u64) -> Result<Vec<Suggestion>, Overloaded> {
        ServeEngine::try_suggest(self, user, k, now)
    }
    fn suggest_batch(&self, requests: &[SuggestRequest], now: u64) -> Vec<Vec<Suggestion>> {
        ServeEngine::suggest_batch(self, requests, now)
    }
    fn try_suggest_batch(
        &self,
        requests: &[SuggestRequest],
        now: u64,
    ) -> Result<Vec<Vec<Suggestion>>, Overloaded> {
        ServeEngine::try_suggest_batch(self, requests, now)
    }
    fn evict_idle(&self, now: u64) -> usize {
        ServeEngine::evict_idle(self, now)
    }
    fn publish(&self, snapshot: Arc<ModelSnapshot>) -> u64 {
        ServeEngine::publish(self, snapshot)
    }
    fn generation(&self) -> u64 {
        ServeEngine::generation(self)
    }
    fn stats(&self) -> EngineStats {
        ServeEngine::stats(self)
    }
    fn active_sessions(&self) -> usize {
        ServeEngine::active_sessions(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time audit: the surface trait itself guarantees
    /// `Send + Sync` (it is a supertrait bound, so every implementation is
    /// checked where it is written), and the engine satisfies it both
    /// directly and behind the pointer types front-ends actually share.
    #[test]
    fn surface_is_send_sync_everywhere_it_is_used() {
        fn takes_surface<S: ServeSurface>() {}
        fn takes_send_sync<T: Send + Sync>() {}
        takes_surface::<ServeEngine>();
        takes_send_sync::<ServeEngine>();
        takes_send_sync::<Arc<ServeEngine>>();
        // A type-erased surface (how sqp-net's server can hold "any tier")
        // must remain shareable too.
        takes_send_sync::<Arc<dyn ServeSurface>>();
    }

    #[test]
    fn engine_surface_delegates() {
        use crate::snapshot::{ModelSpec, TrainingConfig};
        use sqp_logsim::RawLogRecord;

        let rec = |machine, ts, q: &str| RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        };
        let records: Vec<_> = (0..6)
            .flat_map(|u| [rec(u, 100, "start"), rec(u, 150, "start::next")])
            .collect();
        let snapshot = Arc::new(ModelSnapshot::from_raw_logs(
            &records,
            &TrainingConfig {
                model: ModelSpec::Adjacency,
                ..TrainingConfig::default()
            },
        ));
        let engine = ServeEngine::new(
            Arc::clone(&snapshot),
            crate::engine::EngineConfig::default(),
        );
        let surface: &dyn ServeSurface = &engine;
        let outcome = surface.track(1, "start", 100);
        assert!(outcome.new_session);
        assert_eq!(
            surface.try_suggest(1, 1, 110).unwrap()[0].query,
            "start::next"
        );
        assert_eq!(
            surface.track_and_suggest(2, "start", 1, 100)[0].query,
            "start::next"
        );
        let batch = surface
            .try_suggest_batch(&[SuggestRequest { user: 1, k: 1 }], 120)
            .unwrap();
        assert_eq!(batch[0][0].query, "start::next");
        assert_eq!(surface.publish(snapshot), 1);
        assert_eq!(surface.generation(), 1);
        let stats = surface.stats();
        assert_eq!(stats.publishes, 1);
        assert_eq!(surface.suggests_total(), stats.suggests);
        assert_eq!(surface.active_sessions(), 2);
        assert_eq!(surface.evict_idle(u64::MAX / 2), 2);
    }
}
