//! Sharded, lock-striped tracking of in-flight user sessions.
//!
//! A live search front-end calls [`SessionTracker::track`] on every issued
//! query and asks for suggestions against the context accumulated so far.
//! The tracker applies the paper's 30-minute rule *online*: a query arriving
//! more than the cutoff after the user's last activity starts a fresh
//! session (the stale context is discarded), mirroring what the offline
//! pipeline's segmentation does to historical logs.
//!
//! Contexts store **query text**, not interned ids. Ids are only meaningful
//! relative to one snapshot's interner, and the model under the tracker is
//! hot-swapped by retrains — text is the stable representation, and the
//! serving engine re-resolves it against whichever snapshot answers the
//! request (batched, so the lookup cost is amortized).
//!
//! Concurrency is lock-striped: user ids hash onto `2^n` shards, each a
//! mutex around an open hash map. Two users on different shards never
//! contend, and the per-shard critical section is a map probe plus a
//! ring-buffer push (the serve paths additionally resolve the context's
//! interner ids in the same section — still a handful of hash probes;
//! model inference always runs with the stripe released).

use sqp_common::hash::fx_hash_one;
use sqp_common::FxHashMap;
use std::collections::hash_map::Entry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The conventional idle cutoff, re-exported from the offline pipeline so
/// online and offline segmentation agree by default.
pub use sqp_sessions::DEFAULT_CUTOFF_SECS;

/// Tracker sizing and eviction parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrackerConfig {
    /// Number of lock stripes; rounded up to a power of two, min 1.
    pub shards: usize,
    /// Maximum queries retained per session context (ring buffer capacity).
    /// Older queries are overwritten; VMM-family models match the longest
    /// suffix anyway, so a short window loses nothing in practice.
    pub context_capacity: usize,
    /// Idle gap (seconds) after which a session is considered over — both
    /// for lazily resetting on the next `track` and for bulk eviction.
    pub idle_cutoff_secs: u64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            shards: 64,
            context_capacity: 8,
            idle_cutoff_secs: DEFAULT_CUTOFF_SECS,
        }
    }
}

/// What a [`SessionTracker::track`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackOutcome {
    /// True when this query started a fresh session (first contact, or the
    /// idle cutoff had passed and the stale context was discarded).
    pub new_session: bool,
    /// Context length after the query was appended (capped at capacity).
    pub context_len: usize,
}

/// One session lifted out of a tracker for import into another — the unit
/// of live-membership handoff.
///
/// Contexts are query **text** (see the module docs), so an export is
/// meaningful on any replica regardless of which model snapshot it serves:
/// handoff is model-generation-independent. `last_seen` carries the
/// 30-minute-rule timestamp across, so a session that was 29 minutes idle
/// on the old home is still 29 minutes idle on the new one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionExport {
    /// The user whose session this is.
    pub user: u64,
    /// The context window, oldest query first.
    pub queries: Vec<String>,
    /// Seconds timestamp of the user's last activity.
    pub last_seen: u64,
}

/// Result of [`SessionTracker::export_sessions`]: the copied sessions plus
/// an account of what the idle filter left behind.
#[derive(Clone, Debug, Default)]
pub struct ExportBatch {
    /// Exported sessions, sorted by user id (deterministic order).
    pub sessions: Vec<SessionExport>,
    /// Sessions that matched the filter but were idle past the cutoff at
    /// export time — skipped: their context is already dead under the
    /// 30-minute rule, so moving it would only resurrect stale state.
    pub skipped_idle: usize,
}

/// Bounded most-recent-queries window: a fixed-capacity ring that overwrites
/// its oldest entry when full.
#[derive(Debug)]
pub(crate) struct ContextRing {
    slots: Box<[Option<Box<str>>]>,
    /// Index of the oldest live entry.
    head: usize,
    len: usize,
}

impl ContextRing {
    fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1)).map(|_| None).collect(),
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, query: Box<str>) {
        let cap = self.slots.len();
        if self.len == cap {
            self.slots[self.head] = Some(query);
            self.head = (self.head + 1) % cap;
        } else {
            self.slots[(self.head + self.len) % cap] = Some(query);
            self.len += 1;
        }
    }

    fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.head = 0;
        self.len = 0;
    }

    fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Oldest → newest.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &str> {
        let cap = self.slots.len();
        (0..self.len).map(move |i| {
            self.slots[(self.head + i) % cap]
                .as_deref()
                // Invariant-impossible: `push` fills slots before `len`
                // counts them, so the first `len` ring positions are
                // always `Some`.
                .expect("live ring slot")
        })
    }
}

/// Per-user state within a shard.
#[derive(Debug)]
pub(crate) struct SessionState {
    pub(crate) ring: ContextRing,
    pub(crate) last_seen: u64,
}

/// One lock stripe of the session map.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) sessions: FxHashMap<u64, SessionState>,
}

impl Shard {
    /// Apply one tracked query while the stripe is locked: reset the ring
    /// if the idle cutoff has passed, append the query, stamp `last_seen`.
    /// Returns the outcome, the updated state (so fused serve paths can
    /// resolve the context in the same critical section), and whether a new
    /// map entry was inserted (the caller bumps the tracker-wide resident
    /// gauge while the stripe is still held, so the gauge never transiently
    /// disagrees with an eviction on the same stripe).
    pub(crate) fn track(
        &mut self,
        user: u64,
        query: &str,
        now: u64,
        cfg: &TrackerConfig,
    ) -> (TrackOutcome, &SessionState, bool) {
        let (state, inserted) = match self.sessions.entry(user) {
            Entry::Occupied(entry) => (entry.into_mut(), false),
            Entry::Vacant(entry) => (
                entry.insert(SessionState {
                    ring: ContextRing::new(cfg.context_capacity),
                    last_seen: now,
                }),
                true,
            ),
        };
        let expired =
            !state.ring.is_empty() && now.saturating_sub(state.last_seen) > cfg.idle_cutoff_secs;
        if expired {
            state.ring.clear();
        }
        let new_session = expired || state.ring.is_empty();
        state.ring.push(query.into());
        state.last_seen = now;
        (
            TrackOutcome {
                new_session,
                context_len: state.ring.len(),
            },
            state,
            inserted,
        )
    }
}

/// Sharded map from hashed user id to bounded session context.
///
/// # Examples
///
/// ```
/// use sqp_serve::{SessionTracker, TrackerConfig};
///
/// let tracker = SessionTracker::new(TrackerConfig::default());
/// tracker.track(7, "rust", 1_000);
/// tracker.track(7, "rust atomics", 1_060);
/// assert_eq!(tracker.context(7, 1_100), vec!["rust", "rust atomics"]);
///
/// // 31 minutes of silence ends the session.
/// let outcome = tracker.track(7, "pizza near me", 1_060 + 31 * 60);
/// assert!(outcome.new_session);
/// assert_eq!(tracker.context(7, 1_060 + 31 * 60), vec!["pizza near me"]);
/// ```
#[derive(Debug)]
pub struct SessionTracker {
    shards: Box<[Mutex<Shard>]>,
    mask: u64,
    cfg: TrackerConfig,
    /// Sessions currently resident across all stripes. Maintained under the
    /// owning stripe's lock at every insert/remove, so a plain atomic load
    /// reads an exact count without touching any stripe — stats collection
    /// (e.g. a router polling every replica) never contends with serving.
    resident: AtomicUsize,
}

impl SessionTracker {
    /// Create an empty tracker.
    pub fn new(cfg: TrackerConfig) -> Self {
        let n = cfg.shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: (n - 1) as u64,
            cfg,
            resident: AtomicUsize::new(0),
        }
    }

    /// The configuration the tracker was built with.
    pub fn config(&self) -> &TrackerConfig {
        &self.cfg
    }

    /// Stripe index for a user — the user id is hashed so adversarially or
    /// sequentially assigned ids still spread across stripes.
    pub(crate) fn shard_index(&self, user: u64) -> usize {
        (fx_hash_one(&user) & self.mask) as usize
    }

    /// Actual stripe count (the configured value rounded up to a power of
    /// two).
    pub(crate) fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn lock_shard(&self, index: usize) -> MutexGuard<'_, Shard> {
        // Poison recovery: every mutation under a stripe lock (map entry
        // upsert, ring push, retain) leaves the shard in a valid state at
        // every step — a panicking thread (e.g. an injected chaos panic at a
        // serve seam) cannot tear it, so the map is safe to keep serving.
        self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Bump the resident gauge for a fresh map insert. Must be called while
    /// the stripe that performed the insert is still locked (see
    /// [`Shard::track`]).
    pub(crate) fn note_insert(&self, inserted: bool) {
        if inserted {
            self.resident.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a query issued by `user` at `now` (seconds). Applies the idle
    /// cutoff lazily: a gap beyond the cutoff discards the stale context and
    /// starts a fresh session.
    pub fn track(&self, user: u64, query: &str, now: u64) -> TrackOutcome {
        let mut shard = self.lock_shard(self.shard_index(user));
        let (outcome, _, inserted) = shard.track(user, query, now, &self.cfg);
        self.note_insert(inserted);
        outcome
    }

    /// The live context for `user` at `now`, oldest query first. Empty when
    /// the user is unknown or their session has passed the idle cutoff.
    pub fn context(&self, user: u64, now: u64) -> Vec<String> {
        let shard = self.lock_shard(self.shard_index(user));
        match shard.sessions.get(&user) {
            Some(state) if now.saturating_sub(state.last_seen) <= self.cfg.idle_cutoff_secs => {
                state.ring.iter().map(str::to_owned).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Forget `user` entirely. Returns true if a session existed.
    pub fn clear(&self, user: u64) -> bool {
        let mut shard = self.lock_shard(self.shard_index(user));
        let removed = shard.sessions.remove(&user).is_some();
        if removed {
            // Still under the stripe lock: the gauge and the map agree.
            self.resident.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Drop every session idle past the cutoff at `now`, reclaiming the
    /// memory. Returns the number of sessions evicted. Intended to run
    /// periodically from a maintenance thread; serving correctness does not
    /// depend on it (`track`/`context` apply the cutoff lazily).
    pub fn evict_idle(&self, now: u64) -> usize {
        let cutoff = self.cfg.idle_cutoff_secs;
        let mut evicted = 0;
        for shard in self.shards.iter() {
            // Poison recovery: see `lock_shard`.
            let mut shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            let before = shard.sessions.len();
            shard
                .sessions
                .retain(|_, state| now.saturating_sub(state.last_seen) <= cutoff);
            let dropped = before - shard.sessions.len();
            // Still under this stripe's lock: the gauge and the map agree.
            self.resident.fetch_sub(dropped, Ordering::Relaxed);
            evicted += dropped;
        }
        evicted
    }

    /// Number of sessions currently resident (including idle ones not yet
    /// evicted). Lock-free: reads a gauge maintained under the stripe locks,
    /// so polling this (e.g. per-replica router stats) never contends with
    /// `track`/`suggest` traffic.
    pub fn active_sessions(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Like [`SessionTracker::track`], but **refuses to start a session**:
    /// returns `None` — and changes nothing — when `user` has no resident
    /// session or their session is idle past the cutoff at `now` (which
    /// would make this query a fresh session under the 30-minute rule).
    /// This is the tracker half of a draining engine: existing sessions
    /// keep being served to completion, new ones are turned away.
    pub fn track_existing(&self, user: u64, query: &str, now: u64) -> Option<TrackOutcome> {
        let mut shard = self.lock_shard(self.shard_index(user));
        match shard.sessions.get(&user) {
            Some(state)
                if !state.ring.is_empty()
                    && now.saturating_sub(state.last_seen) <= self.cfg.idle_cutoff_secs => {}
            _ => return None,
        }
        let (outcome, _, inserted) = shard.track(user, query, now, &self.cfg);
        debug_assert!(!inserted && !outcome.new_session);
        Some(outcome)
    }

    /// Copy out every live session whose user matches `filter` — the export
    /// half of a membership handoff.
    ///
    /// * **Copy, not move**: the source tracker keeps serving the session
    ///   until the caller swaps routing away from it. A handed-off user
    ///   therefore always finds their context *somewhere* the ring routes
    ///   them, whichever side of the swap an operation lands on.
    /// * **Idle sessions are skipped** (counted in
    ///   [`ExportBatch::skipped_idle`]): their context is already dead
    ///   under the 30-minute rule.
    /// * Stripes are locked one at a time — export never stalls traffic on
    ///   more than one stripe, and never holds two locks at once.
    pub fn export_sessions(&self, now: u64, mut filter: impl FnMut(u64) -> bool) -> ExportBatch {
        let cutoff = self.cfg.idle_cutoff_secs;
        let mut batch = ExportBatch::default();
        for index in 0..self.shards.len() {
            let shard = self.lock_shard(index);
            for (&user, state) in shard.sessions.iter() {
                if !filter(user) {
                    continue;
                }
                if state.ring.is_empty() || now.saturating_sub(state.last_seen) > cutoff {
                    batch.skipped_idle += 1;
                    continue;
                }
                batch.sessions.push(SessionExport {
                    user,
                    queries: state.ring.iter().map(str::to_owned).collect(),
                    last_seen: state.last_seen,
                });
            }
        }
        // Map iteration order is an implementation detail; sorted output
        // makes export deterministic for replayable handoff scenarios.
        batch.sessions.sort_unstable_by_key(|s| s.user);
        batch
    }

    /// Install an exported session — the import half of a membership
    /// handoff. Returns `true` when the session was installed.
    ///
    /// If the user already has a session here with `last_seen` **at or
    /// after** the export's, the import is dropped and `false` returned:
    /// the resident session saw activity at least as recent as the copy,
    /// so clobbering it could throw away queries tracked after the export
    /// was cut (the race window between export and ring swap). Newest
    /// activity wins; the context window is truncated to this tracker's
    /// capacity, keeping the most recent queries.
    pub fn import_session(&self, export: &SessionExport) -> bool {
        let mut shard = self.lock_shard(self.shard_index(export.user));
        let mut inserted = false;
        let state = match shard.sessions.entry(export.user) {
            Entry::Occupied(entry) => {
                let state = entry.into_mut();
                if state.last_seen >= export.last_seen {
                    return false;
                }
                state
            }
            Entry::Vacant(entry) => {
                inserted = true;
                entry.insert(SessionState {
                    ring: ContextRing::new(self.cfg.context_capacity),
                    last_seen: export.last_seen,
                })
            }
        };
        state.ring.clear();
        for query in &export.queries {
            // Pushing oldest → newest into the bounded ring keeps the
            // newest `context_capacity` queries when the destination window
            // is smaller than the exported one.
            state.ring.push(query.as_str().into());
        }
        state.last_seen = export.last_seen;
        // Still under the stripe lock: the gauge and the map agree.
        self.note_insert(inserted);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let mut ring = ContextRing::new(3);
        for q in ["a", "b", "c", "d"] {
            ring.push(q.into());
        }
        let got: Vec<&str> = ring.iter().collect();
        assert_eq!(got, vec!["b", "c", "d"]);
        ring.push("e".into());
        let got: Vec<&str> = ring.iter().collect();
        assert_eq!(got, vec!["c", "d", "e"]);
    }

    #[test]
    fn track_accumulates_context() {
        let t = SessionTracker::new(TrackerConfig::default());
        assert_eq!(
            t.track(1, "a", 100),
            TrackOutcome {
                new_session: true,
                context_len: 1
            }
        );
        assert_eq!(
            t.track(1, "b", 200),
            TrackOutcome {
                new_session: false,
                context_len: 2
            }
        );
        assert_eq!(t.context(1, 250), vec!["a", "b"]);
        assert_eq!(t.active_sessions(), 1);
    }

    #[test]
    fn idle_gap_starts_fresh_session() {
        let cfg = TrackerConfig {
            idle_cutoff_secs: 100,
            ..TrackerConfig::default()
        };
        let t = SessionTracker::new(cfg);
        t.track(1, "a", 1000);
        // Within the cutoff: same session.
        assert!(!t.track(1, "b", 1100).new_session);
        // Beyond it: context resets.
        let out = t.track(1, "c", 1201);
        assert!(out.new_session);
        assert_eq!(out.context_len, 1);
        assert_eq!(t.context(1, 1201), vec!["c"]);
    }

    #[test]
    fn context_expires_without_track() {
        let cfg = TrackerConfig {
            idle_cutoff_secs: 60,
            ..TrackerConfig::default()
        };
        let t = SessionTracker::new(cfg);
        t.track(1, "a", 0);
        assert_eq!(t.context(1, 60), vec!["a"]);
        assert!(t.context(1, 61).is_empty());
    }

    #[test]
    fn evict_idle_reclaims_sessions() {
        let cfg = TrackerConfig {
            idle_cutoff_secs: 60,
            shards: 4,
            ..TrackerConfig::default()
        };
        let t = SessionTracker::new(cfg);
        for u in 0..100 {
            t.track(u, "q", u); // last_seen = u
        }
        assert_eq!(t.active_sessions(), 100);
        // At now=120, users with last_seen < 60 are idle past the cutoff.
        let evicted = t.evict_idle(120);
        assert_eq!(evicted, 60);
        assert_eq!(t.active_sessions(), 40);
        // Evicted users start fresh sessions.
        assert!(t.track(0, "q2", 121).new_session);
    }

    #[test]
    fn clear_forgets_user() {
        let t = SessionTracker::new(TrackerConfig::default());
        t.track(9, "a", 0);
        assert!(t.clear(9));
        assert!(!t.clear(9));
        assert!(t.context(9, 1).is_empty());
    }

    #[test]
    fn ring_capacity_bounds_context() {
        let cfg = TrackerConfig {
            context_capacity: 2,
            ..TrackerConfig::default()
        };
        let t = SessionTracker::new(cfg);
        for (i, q) in ["a", "b", "c"].iter().enumerate() {
            t.track(5, q, i as u64);
        }
        assert_eq!(t.context(5, 3), vec!["b", "c"]);
    }

    #[test]
    fn resident_gauge_stays_exact_without_locking() {
        let cfg = TrackerConfig {
            idle_cutoff_secs: 60,
            shards: 4,
            ..TrackerConfig::default()
        };
        let t = SessionTracker::new(cfg);
        for u in 0..10 {
            t.track(u, "q", 0);
            t.track(u, "q2", 1); // re-track: no new insert
        }
        assert_eq!(t.active_sessions(), 10);
        assert!(t.clear(3));
        assert!(!t.clear(3)); // double clear must not double-decrement
        assert_eq!(t.active_sessions(), 9);
        assert_eq!(t.evict_idle(1000), 9);
        assert_eq!(t.active_sessions(), 0);
        // An evicted user re-inserts and counts again.
        t.track(3, "back", 1001);
        assert_eq!(t.active_sessions(), 1);
    }

    #[test]
    fn track_existing_refuses_new_and_expired_sessions() {
        let cfg = TrackerConfig {
            idle_cutoff_secs: 100,
            ..TrackerConfig::default()
        };
        let t = SessionTracker::new(cfg);
        // Unknown user: refused, nothing created.
        assert_eq!(t.track_existing(1, "a", 10), None);
        assert_eq!(t.active_sessions(), 0);
        // Live session: tracked normally.
        t.track(1, "a", 10);
        let out = t.track_existing(1, "b", 50).expect("live session");
        assert!(!out.new_session);
        assert_eq!(out.context_len, 2);
        // Idle past the cutoff: this would be a fresh session — refused,
        // and the stale context is left untouched for eviction.
        assert_eq!(t.track_existing(1, "c", 151), None);
        assert_eq!(t.context(1, 100), vec!["a", "b"]);
    }

    #[test]
    fn export_copies_and_import_installs() {
        let cfg = TrackerConfig {
            idle_cutoff_secs: 60,
            ..TrackerConfig::default()
        };
        let src = SessionTracker::new(cfg);
        let dst = SessionTracker::new(cfg);
        src.track(1, "a", 100);
        src.track(1, "b", 110);
        src.track(2, "x", 10); // idle at now=120
        let batch = src.export_sessions(120, |_| true);
        assert_eq!(batch.sessions.len(), 1);
        assert_eq!(batch.skipped_idle, 1);
        assert_eq!(batch.sessions[0].user, 1);
        assert_eq!(batch.sessions[0].queries, vec!["a", "b"]);
        assert_eq!(batch.sessions[0].last_seen, 110);
        // Copy semantics: the source still serves the session.
        assert_eq!(src.context(1, 120), vec!["a", "b"]);
        assert!(dst.import_session(&batch.sessions[0]));
        assert_eq!(dst.context(1, 120), vec!["a", "b"]);
        assert_eq!(dst.active_sessions(), 1);
    }

    #[test]
    fn import_never_clobbers_newer_resident_session() {
        let t = SessionTracker::new(TrackerConfig::default());
        t.track(7, "fresh", 500);
        let stale = SessionExport {
            user: 7,
            queries: vec!["old".into()],
            last_seen: 400,
        };
        assert!(!t.import_session(&stale));
        assert_eq!(t.context(7, 500), vec!["fresh"]);
        // Equal timestamps also keep the resident session (>= rule).
        let tied = SessionExport {
            user: 7,
            queries: vec!["tied".into()],
            last_seen: 500,
        };
        assert!(!t.import_session(&tied));
        assert_eq!(t.context(7, 500), vec!["fresh"]);
        // A strictly newer export replaces it.
        let newer = SessionExport {
            user: 7,
            queries: vec!["newer".into()],
            last_seen: 501,
        };
        assert!(t.import_session(&newer));
        assert_eq!(t.context(7, 501), vec!["newer"]);
        assert_eq!(t.active_sessions(), 1);
    }

    #[test]
    fn users_spread_across_shards() {
        let t = SessionTracker::new(TrackerConfig {
            shards: 8,
            ..TrackerConfig::default()
        });
        let mut hit = std::collections::HashSet::new();
        for u in 0..64 {
            hit.insert(t.shard_index(u));
        }
        assert!(hit.len() > 1, "sequential ids all landed on one stripe");
    }

    #[test]
    fn concurrent_tracking_is_consistent() {
        let t = std::sync::Arc::new(SessionTracker::new(TrackerConfig {
            shards: 8,
            ..TrackerConfig::default()
        }));
        std::thread::scope(|scope| {
            for thread in 0..4u64 {
                let t = std::sync::Arc::clone(&t);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let user = (thread * 1000) + (i % 50);
                        t.track(user, &format!("q{i}"), i);
                    }
                });
            }
        });
        assert_eq!(t.active_sessions(), 4 * 50);
    }
}
