//! Immutable trained-model snapshots — the unit of publication.
//!
//! A [`ModelSnapshot`] bundles everything one trained model needs to answer
//! suggestions: the frozen [`Interner`] that maps query text to the dense
//! ids the model was trained over, the model itself, and training metadata.
//! Snapshots are **immutable after construction** — the serving engine
//! shares one behind an [`Arc`](std::sync::Arc) across every worker thread
//! and swaps the whole bundle atomically when a retrain finishes. Keeping
//! the interner inside the snapshot is what makes the swap safe: a
//! `QueryId` is only meaningful relative to the interner that produced it,
//! so ids resolved against snapshot N are never mixed with a model from
//! snapshot N+1.

use sqp_common::topk::Scored;
use sqp_common::{Interner, QueryId};
use sqp_core::{Mvmm, MvmmConfig, Recommender, Vmm, VmmConfig};
use sqp_logsim::RawLogRecord;
use sqp_sessions::{aggregate, reduce, segment_with_parallelism, DEFAULT_CUTOFF_SECS};

/// Which model a snapshot trains.
#[derive(Clone, Debug)]
pub enum ModelSpec {
    /// The paper's MVMM (default: the 11-component ε sweep).
    Mvmm(MvmmConfig),
    /// A single VMM.
    Vmm(VmmConfig),
    /// The Adjacency baseline (smallest footprint).
    Adjacency,
    /// The Co-occurrence baseline (best raw coverage).
    Cooccurrence,
    /// The naive variable-length N-gram over full prefix contexts.
    NGram,
    /// The Katz-style back-off N-gram.
    Backoff(sqp_core::BackoffConfig),
}

impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec::Mvmm(MvmmConfig::epsilon_sweep())
    }
}

/// Training parameters for building a snapshot from raw logs.
#[derive(Clone, Debug)]
pub struct TrainingConfig {
    /// Session cutoff for the 30-minute rule, in seconds.
    pub session_cutoff_secs: u64,
    /// Drop aggregated sessions with frequency ≤ this.
    pub reduction_threshold: u64,
    /// The model to train.
    pub model: ModelSpec,
    /// Shard segmentation and window counting across threads. Training is
    /// deterministic either way; production builds want this on.
    pub parallel: bool,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            session_cutoff_secs: DEFAULT_CUTOFF_SECS,
            reduction_threshold: 0,
            model: ModelSpec::default(),
            parallel: true,
        }
    }
}

/// A ranked suggestion.
#[derive(Clone, Debug, PartialEq)]
pub struct Suggestion {
    /// Suggested query text.
    pub query: String,
    /// Model score (higher is better).
    pub score: f64,
}

/// A trained model plus the interner it was trained against, frozen for
/// concurrent serving.
///
/// # Examples
///
/// ```
/// use sqp_logsim::RawLogRecord;
/// use sqp_serve::{ModelSnapshot, ModelSpec, TrainingConfig};
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let mut records = Vec::new();
/// for u in 0..5 {
///     records.push(rec(u, 100, "rust"));
///     records.push(rec(u, 160, "rust atomics"));
/// }
/// let snapshot = ModelSnapshot::from_raw_logs(
///     &records,
///     &TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() },
/// );
/// let top = snapshot.suggest(&["rust"], 1);
/// assert_eq!(top[0].query, "rust atomics");
/// ```
pub struct ModelSnapshot {
    interner: Interner,
    model: Box<dyn Recommender>,
    trained_sessions: u64,
}

impl std::fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSnapshot")
            .field("model", &self.model.name())
            .field("vocabulary", &self.interner.len())
            .field("trained_sessions", &self.trained_sessions)
            .finish_non_exhaustive()
    }
}

impl ModelSnapshot {
    /// Build from raw click-log records: sessionize, aggregate, reduce,
    /// train.
    pub fn from_raw_logs(records: &[RawLogRecord], cfg: &TrainingConfig) -> Self {
        let sessions = segment_with_parallelism(records, cfg.session_cutoff_secs, cfg.parallel);
        let mut interner = Interner::new();
        let aggregated = aggregate(&sessions, &mut interner);
        let (reduced, _) = reduce(&aggregated, cfg.reduction_threshold);
        let trained_sessions = reduced.total_sessions();
        let model: Box<dyn Recommender> = match &cfg.model {
            ModelSpec::Mvmm(c) => Box::new(Mvmm::train(&reduced.sessions, c)),
            ModelSpec::Vmm(c) => Box::new(Vmm::train(&reduced.sessions, c.parallel(cfg.parallel))),
            ModelSpec::Adjacency => Box::new(sqp_core::Adjacency::train(&reduced.sessions)),
            ModelSpec::Cooccurrence => Box::new(sqp_core::Cooccurrence::train(&reduced.sessions)),
            ModelSpec::NGram => Box::new(sqp_core::NGram::train(&reduced.sessions)),
            ModelSpec::Backoff(c) => Box::new(sqp_core::BackoffNgram::train(&reduced.sessions, *c)),
        };
        Self::from_parts(interner, model, trained_sessions)
    }

    /// Assemble from an already-trained model and the interner its ids are
    /// relative to. `trained_sessions` is the session mass used in training
    /// (metadata only).
    pub fn from_parts(
        interner: Interner,
        model: Box<dyn Recommender>,
        trained_sessions: u64,
    ) -> Self {
        Self {
            interner,
            model,
            trained_sessions,
        }
    }

    /// Resolve a textual context into `ids` (cleared first).
    ///
    /// Unknown queries stay in the context as placeholders only if they are
    /// not the final query — suffix-matching models skip an unknown prefix,
    /// but an unknown *current* query means no evidence at all. Returns
    /// `false` when the context is empty or its final query is unknown.
    pub fn resolve_context_into<'a, I>(&self, context: I, ids: &mut Vec<QueryId>) -> bool
    where
        I: IntoIterator<Item = &'a str>,
    {
        ids.clear();
        let mut final_known = false;
        let mut nonempty = false;
        for q in context {
            nonempty = true;
            match self.interner.get(q) {
                Some(id) => {
                    ids.push(id);
                    final_known = true;
                }
                None => final_known = false,
            }
        }
        nonempty && final_known
    }

    /// Top-`k` candidates for a pre-resolved context, written into a reused
    /// buffer (cleared first). The batched serve path calls this once per
    /// request with per-shard scratch, so a steady-state suggest performs
    /// no intermediate allocations.
    pub fn recommend_ids_into(&self, ids: &[QueryId], k: usize, out: &mut Vec<Scored>) {
        self.model.recommend_into(ids, k, out);
    }

    /// Materialize scored ids as textual [`Suggestion`]s, appending to `out`.
    pub fn render_into(&self, scored: &[Scored], out: &mut Vec<Suggestion>) {
        for s in scored {
            out.push(Suggestion {
                query: self.interner.resolve(s.query).to_owned(),
                score: s.score,
            });
        }
    }

    /// Top-`k` suggestions for the session so far (oldest query first).
    /// Empty when the context is uncovered.
    pub fn suggest(&self, context: &[&str], k: usize) -> Vec<Suggestion> {
        let mut ids = Vec::new();
        let mut scored = Vec::new();
        if !self.resolve_context_into(context.iter().copied(), &mut ids) {
            return Vec::new();
        }
        self.recommend_ids_into(&ids, k, &mut scored);
        let mut out = Vec::with_capacity(scored.len());
        self.render_into(&scored, &mut out);
        out
    }

    /// Can the snapshot say anything for this context?
    pub fn covers(&self, context: &[&str]) -> bool {
        let mut ids = Vec::new();
        self.resolve_context_into(context.iter().copied(), &mut ids) && self.model.covers(&ids)
    }

    /// Name of the underlying model.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }

    /// Session mass the model was trained on.
    pub fn trained_sessions(&self) -> u64 {
        self.trained_sessions
    }

    /// Distinct queries known to the snapshot.
    pub fn vocabulary_size(&self) -> usize {
        self.interner.len()
    }

    /// Approximate model heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.model.memory_bytes()
    }

    /// The frozen interner the model's ids are relative to.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The trained model.
    pub fn model(&self) -> &dyn Recommender {
        self.model.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole serving stack must be shareable across threads: every
    /// model behind the `Recommender` trait object, the snapshot bundle,
    /// and the engine. A model growing interior mutability (Cell, RefCell,
    /// un-synchronized caches) would fail to compile here.
    #[test]
    fn serving_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<sqp_core::Adjacency>();
        assert_send_sync::<sqp_core::Cooccurrence>();
        assert_send_sync::<sqp_core::NGram>();
        assert_send_sync::<Vmm>();
        assert_send_sync::<Mvmm>();
        assert_send_sync::<Box<dyn Recommender>>();
        assert_send_sync::<ModelSnapshot>();
        assert_send_sync::<crate::ServeEngine>();
        assert_send_sync::<crate::SessionTracker>();
        assert_send_sync::<crate::Swap<ModelSnapshot>>();
    }

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn snapshot() -> ModelSnapshot {
        let mut records = Vec::new();
        for u in 0..8 {
            records.push(rec(u, 100, "garden"));
            records.push(rec(u, 180, "garden shed"));
        }
        ModelSnapshot::from_raw_logs(
            &records,
            &TrainingConfig {
                model: ModelSpec::Vmm(VmmConfig::with_epsilon(0.05)),
                ..TrainingConfig::default()
            },
        )
    }

    #[test]
    fn suggests_and_covers() {
        let s = snapshot();
        let top = s.suggest(&["garden"], 2);
        assert_eq!(top[0].query, "garden shed");
        assert!(s.covers(&["garden"]));
        assert!(!s.covers(&["unknown query"]));
        assert!(s.suggest(&[], 3).is_empty());
    }

    #[test]
    fn unknown_prefix_is_skipped_unknown_tail_rejected() {
        let s = snapshot();
        let mut ids = Vec::new();
        assert!(s.resolve_context_into(["never seen", "garden"].into_iter(), &mut ids));
        assert_eq!(ids.len(), 1);
        assert!(!s.resolve_context_into(["garden", "never seen"].into_iter(), &mut ids));
    }

    #[test]
    fn metadata_accessors() {
        let s = snapshot();
        assert_eq!(s.model_name(), "VMM (0.05)");
        assert_eq!(s.vocabulary_size(), 2);
        assert_eq!(s.trained_sessions(), 8);
        assert!(s.memory_bytes() > 0);
        assert!(s.interner().get("garden").is_some());
        assert!(s.model().covers(&[s.interner().get("garden").unwrap()]));
    }

    #[test]
    fn buffered_path_matches_convenience_path() {
        let s = snapshot();
        let mut ids = Vec::new();
        let mut scored = Vec::new();
        let mut out = Vec::new();
        assert!(s.resolve_context_into(["garden"].into_iter(), &mut ids));
        s.recommend_ids_into(&ids, 2, &mut scored);
        s.render_into(&scored, &mut out);
        assert_eq!(out, s.suggest(&["garden"], 2));
    }
}
