//! # sqp-serve — concurrent serving subsystem
//!
//! Turns a trained sequential-query-prediction model into something a live
//! search front-end can sit on: many threads of mixed traffic, per-user
//! session state, and zero-downtime model retrains.
//!
//! Three layers, composed by [`ServeEngine`]:
//!
//! * [`ModelSnapshot`] — an immutable bundle of a trained
//!   [`Recommender`](sqp_core::Recommender) and the frozen
//!   [`Interner`](sqp_common::Interner) its ids are relative to. Ids never
//!   cross snapshot boundaries, so a snapshot is always internally
//!   consistent.
//! * [`Swap`] — an arc-swap-style publication cell. Readers load an
//!   [`Arc`](std::sync::Arc) handle; a retrain publishes a new snapshot with
//!   [`Swap::store`] and in-flight requests finish on the old one. No locks
//!   are held while a model is consulted and no request can observe a
//!   half-swapped model.
//! * [`SessionTracker`] — sharded, lock-striped per-user context windows
//!   (bounded ring buffers of recent query text) with the paper's 30-minute
//!   rule applied online: long idle gaps start fresh sessions, and
//!   [`SessionTracker::evict_idle`] reclaims abandoned ones.
//!
//! The engine's [`suggest_batch`](ServeEngine::suggest_batch) amortizes the
//! per-request costs — one snapshot load per batch, stripe locks carried
//! across same-shard runs, and id resolution plus top-k selection running
//! through buffers reused across the whole batch. Session locks cover only
//! map probes and interner lookups; model inference always runs with every
//! lock released.
//!
//! # Examples
//!
//! Serve, retrain, and hot-swap without dropping a request:
//!
//! ```
//! use std::sync::Arc;
//! use sqp_logsim::RawLogRecord;
//! use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
//!
//! let rec = |machine, ts, q: &str| RawLogRecord {
//!     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
//! };
//! let mut logs = Vec::new();
//! for u in 0..10 {
//!     logs.push(rec(u, 100, "weather"));
//!     logs.push(rec(u, 130, "weather tomorrow"));
//! }
//! let cfg = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
//! let engine = ServeEngine::new(
//!     Arc::new(ModelSnapshot::from_raw_logs(&logs, &cfg)),
//!     EngineConfig::default(),
//! );
//!
//! // Live traffic: track the user's query, suggest against their session.
//! engine.track(7, "weather", 1_000);
//! assert_eq!(engine.suggest(7, 1, 1_001)[0].query, "weather tomorrow");
//!
//! // A retrain finished — publish it. Nobody stops serving.
//! logs.push(rec(99, 100, "weather"));
//! logs.push(rec(99, 130, "weather radar"));
//! let next = Arc::new(ModelSnapshot::from_raw_logs(&logs, &cfg));
//! assert_eq!(engine.publish(next), 1);
//! assert_eq!(engine.generation(), 1);
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod session;
pub mod snapshot;
pub mod surface;
pub mod swap;

pub use engine::{
    EngineConfig, EngineStats, InFlightPermit, Overloaded, ServeEngine, SuggestRequest,
};
pub use session::{
    ExportBatch, SessionExport, SessionTracker, TrackOutcome, TrackerConfig, DEFAULT_CUTOFF_SECS,
};
pub use snapshot::{ModelSnapshot, ModelSpec, Suggestion, TrainingConfig};
pub use surface::ServeSurface;
pub use swap::Swap;
