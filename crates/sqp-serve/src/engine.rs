//! The serving engine: session tracking in front of a hot-swappable model.
//!
//! [`ServeEngine`] is the piece a search front-end embeds. It owns a
//! [`SessionTracker`] and the current [`ModelSnapshot`] behind a [`Swap`]
//! cell, and exposes the four operations live traffic needs:
//!
//! * [`track`](ServeEngine::track) — record a user's query;
//! * [`suggest`](ServeEngine::suggest) /
//!   [`suggest_batch`](ServeEngine::suggest_batch) — rank next-query
//!   candidates for tracked sessions (batched requests amortize the
//!   snapshot load, carry stripe locks across same-shard runs, and reuse
//!   id/top-k buffers across the batch);
//! * [`suggest_context`](ServeEngine::suggest_context) — stateless
//!   suggestion for an explicit context;
//! * [`publish`](ServeEngine::publish) — atomically swap in a freshly
//!   trained snapshot while concurrent readers keep serving the old one.
//!
//! Every suggestion is computed against exactly one snapshot handle loaded
//! at the start of the request, so a mid-request publication can never mix
//! two models' vocabularies (no torn reads — asserted by the concurrency
//! tests in the umbrella crate).

use crate::session::{SessionTracker, TrackOutcome, TrackerConfig};
use crate::snapshot::{ModelSnapshot, Suggestion};
use crate::swap::Swap;
use sqp_common::hazard::{Hazard, NoHazard};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Engine construction parameters.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Session-tracker sizing and eviction parameters.
    pub tracker: TrackerConfig,
    /// Admission-control budget: maximum requests simultaneously in flight
    /// through the `try_*` serve paths before [`ServeEngine::admit`] sheds
    /// with [`Overloaded`]. `0` (the default) disables the limit.
    pub max_in_flight: usize,
}

/// Typed rejection from [`ServeEngine::admit`]: the in-flight budget is
/// exhausted and the request was shed instead of queued.
///
/// Shedding is deliberate back-pressure — under overload, answering fewer
/// requests quickly beats answering all of them late. Callers translate
/// this into their transport's "retry later" (HTTP 503 + Retry-After).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// The configured budget that was exhausted.
    pub limit: usize,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serve engine overloaded ({} requests in flight)",
            self.limit
        )
    }
}

impl std::error::Error for Overloaded {}

/// RAII admission token from [`ServeEngine::admit`]; the in-flight slot is
/// released when the permit drops (including on panic, so an injected
/// worker crash cannot leak budget).
#[derive(Debug)]
pub struct InFlightPermit<'a> {
    in_flight: &'a AtomicU64,
}

impl Drop for InFlightPermit<'_> {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One entry of a batched suggestion request.
#[derive(Clone, Copy, Debug)]
pub struct SuggestRequest {
    /// The user whose tracked context to rank against.
    pub user: u64,
    /// How many candidates to return.
    pub k: usize,
}

/// Operation counters and gauges, snapshotted without taking any stripe
/// lock — [`ServeEngine::stats`] is plain atomic loads, so a stats poller
/// (e.g. a router collecting per-replica health every tick) never contends
/// with `track_and_suggest` traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries recorded via `track` (including the tracked half of
    /// `track_and_suggest`).
    pub tracks: u64,
    /// Suggestion computations served (batch entries count individually).
    pub suggests: u64,
    /// Snapshots published.
    pub publishes: u64,
    /// Requests shed by admission control ([`ServeEngine::admit`] refusals).
    pub shed: u64,
    /// Sessions dropped by [`ServeEngine::evict_idle`] over the engine's
    /// lifetime (monotonic; lazy per-`track` resets are not counted).
    pub evictions: u64,
    /// Sessions currently resident in the tracker (a gauge, not a counter —
    /// it goes down when sessions are evicted or cleared).
    pub active_sessions: u64,
}

/// A concurrent query-suggestion server over a hot-swappable model.
///
/// All methods take `&self`; the engine is meant to live in an
/// [`Arc`] shared across worker threads.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sqp_logsim::RawLogRecord;
/// use sqp_serve::{EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, TrainingConfig};
///
/// let rec = |machine, ts, q: &str| RawLogRecord {
///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
/// };
/// let mut records = Vec::new();
/// for u in 0..5 {
///     records.push(rec(u, 100, "rust"));
///     records.push(rec(u, 150, "rust atomics"));
/// }
/// let cfg = TrainingConfig { model: ModelSpec::Adjacency, ..TrainingConfig::default() };
/// let snapshot = Arc::new(ModelSnapshot::from_raw_logs(&records, &cfg));
/// let engine = ServeEngine::new(snapshot, EngineConfig::default());
///
/// engine.track(42, "rust", 1_000);
/// let top = engine.suggest(42, 3, 1_010);
/// assert_eq!(top[0].query, "rust atomics");
/// ```
pub struct ServeEngine {
    tracker: SessionTracker,
    current: Swap<ModelSnapshot>,
    tracks: AtomicU64,
    suggests: AtomicU64,
    evictions: AtomicU64,
    max_in_flight: usize,
    in_flight: AtomicU64,
    shed: AtomicU64,
    hazard: Arc<dyn Hazard>,
    /// Precomputed `"serve.shard.N"` hazard-site names, one per stripe, so
    /// the hot path never formats strings to announce a seam crossing.
    shard_sites: Box<[String]>,
    /// Draining mode: existing sessions keep being served, new ones are
    /// refused (see [`ServeEngine::set_draining`]).
    draining: AtomicBool,
    /// Tracks refused because the engine was draining and the query would
    /// have started a new session.
    drain_refused: AtomicU64,
}

impl ServeEngine {
    /// Build an engine serving `snapshot` with the production (no-op)
    /// hazard.
    pub fn new(snapshot: Arc<ModelSnapshot>, cfg: EngineConfig) -> Self {
        Self::with_hazard(snapshot, cfg, Arc::new(NoHazard))
    }

    /// Build an engine whose serve-path chaos seams strike `hazard` —
    /// production code never needs this; fault-injection harnesses pass the
    /// chaos runtime here to stall or crash requests at deterministic
    /// points.
    pub fn with_hazard(
        snapshot: Arc<ModelSnapshot>,
        cfg: EngineConfig,
        hazard: Arc<dyn Hazard>,
    ) -> Self {
        let tracker = SessionTracker::new(cfg.tracker);
        let shard_sites = (0..tracker.num_shards())
            .map(|i| format!("serve.shard.{i}"))
            .collect();
        Self {
            tracker,
            current: Swap::new(snapshot),
            tracks: AtomicU64::new(0),
            suggests: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            max_in_flight: cfg.max_in_flight,
            in_flight: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            hazard,
            shard_sites,
            draining: AtomicBool::new(false),
            drain_refused: AtomicU64::new(0),
        }
    }

    /// Enter or leave draining mode.
    ///
    /// A draining engine keeps serving every **existing** live session —
    /// tracks, suggests, batches — but refuses any track that would start
    /// a **new** session (first contact, or a return past the idle
    /// cutoff). A refused track returns the sentinel outcome
    /// `TrackOutcome { new_session: false, context_len: 0 }` (impossible
    /// for an admitted track, which always has `context_len ≥ 1`) and is
    /// counted in [`ServeEngine::drain_refused`]. This is the serve-layer
    /// half of a membership drain: routing stops sending new users here,
    /// and stragglers cannot take root while the replica winds down.
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::Release);
    }

    /// True when the engine is refusing new sessions (see
    /// [`ServeEngine::set_draining`]).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Tracks refused in draining mode because they would have started a
    /// new session. Monotonic over the engine's lifetime.
    pub fn drain_refused(&self) -> u64 {
        self.drain_refused.load(Ordering::Relaxed)
    }

    /// The sentinel outcome for a track refused by draining mode.
    fn refuse_drain(&self) -> TrackOutcome {
        self.drain_refused.fetch_add(1, Ordering::Relaxed);
        TrackOutcome {
            new_session: false,
            context_len: 0,
        }
    }

    /// Reserve an in-flight slot, or shed with [`Overloaded`] when the
    /// configured budget (`max_in_flight`, 0 = unlimited) is exhausted. The
    /// returned permit releases the slot on drop — hold it across the work
    /// the admission should cover. The `try_*` serve methods bundle this;
    /// `admit` is public for callers wrapping their own request pipelines.
    pub fn admit(&self) -> Result<InFlightPermit<'_>, Overloaded> {
        let occupied = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if self.max_in_flight != 0 && occupied >= self.max_in_flight as u64 {
            // Roll back the optimistic reservation and count the shed.
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Overloaded {
                limit: self.max_in_flight,
            });
        }
        Ok(InFlightPermit {
            in_flight: &self.in_flight,
        })
    }

    /// Requests currently holding admission permits.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Admission-controlled [`suggest`](Self::suggest).
    pub fn try_suggest(
        &self,
        user: u64,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        let _permit = self.admit()?;
        Ok(self.suggest(user, k, now))
    }

    /// Admission-controlled [`track_and_suggest`](Self::track_and_suggest).
    pub fn try_track_and_suggest(
        &self,
        user: u64,
        query: &str,
        k: usize,
        now: u64,
    ) -> Result<Vec<Suggestion>, Overloaded> {
        let _permit = self.admit()?;
        Ok(self.track_and_suggest(user, query, k, now))
    }

    /// Admission-controlled [`suggest_batch`](Self::suggest_batch). The
    /// whole batch costs one permit: it shares one snapshot load and its
    /// buffers, so per-entry admission would overcount its footprint.
    pub fn try_suggest_batch(
        &self,
        requests: &[SuggestRequest],
        now: u64,
    ) -> Result<Vec<Vec<Suggestion>>, Overloaded> {
        let _permit = self.admit()?;
        Ok(self.suggest_batch(requests, now))
    }

    /// Record a query issued by `user` at `now` (seconds since any fixed
    /// epoch — only gaps matter).
    pub fn track(&self, user: u64, query: &str, now: u64) -> TrackOutcome {
        self.tracks.fetch_add(1, Ordering::Relaxed);
        if self.is_draining() {
            return match self.tracker.track_existing(user, query, now) {
                Some(outcome) => outcome,
                None => self.refuse_drain(),
            };
        }
        self.tracker.track(user, query, now)
    }

    /// Top-`k` suggestions for `user`'s tracked session. Empty when the
    /// user has no live session or the context is uncovered by the current
    /// model.
    pub fn suggest(&self, user: u64, k: usize, now: u64) -> Vec<Suggestion> {
        self.suggest_batch(&[SuggestRequest { user, k }], now)
            .pop()
            .unwrap_or_default()
    }

    /// Record `query` for `user` and immediately suggest against the
    /// updated context — the common search-box round trip. One snapshot
    /// load and one stripe acquisition: the context is updated and resolved
    /// to ids in the same critical section, and model inference runs after
    /// the lock is released.
    pub fn track_and_suggest(&self, user: u64, query: &str, k: usize, now: u64) -> Vec<Suggestion> {
        self.tracks.fetch_add(1, Ordering::Relaxed);
        self.suggests.fetch_add(1, Ordering::Relaxed);
        let snapshot = self.current.load();
        let draining = self.is_draining();
        let mut ids = Vec::new();
        let covered = {
            let shard_idx = self.tracker.shard_index(user);
            let mut shard = self.tracker.lock_shard(shard_idx);
            // Chaos seam, struck while the stripe is held: an injected
            // panic here poisons the lock, exercising the tracker's poison
            // recovery; an injected stall models a slow shard.
            self.hazard.strike(&self.shard_sites[shard_idx]);
            if draining {
                // Same rule as `SessionTracker::track_existing`, applied
                // inside this path's own critical section: only a session
                // that is live *right now* may be extended.
                let cutoff = self.tracker.config().idle_cutoff_secs;
                let live = shard.sessions.get(&user).is_some_and(|state| {
                    !state.ring.is_empty() && now.saturating_sub(state.last_seen) <= cutoff
                });
                if !live {
                    drop(shard);
                    self.refuse_drain();
                    return Vec::new();
                }
            }
            let (_, state, inserted) = shard.track(user, query, now, self.tracker.config());
            self.tracker.note_insert(inserted);
            snapshot.resolve_context_into(state.ring.iter(), &mut ids)
        };
        if !covered {
            return Vec::new();
        }
        let mut topk = Vec::new();
        snapshot.recommend_ids_into(&ids, k, &mut topk);
        let mut rendered = Vec::with_capacity(topk.len());
        snapshot.render_into(&topk, &mut rendered);
        rendered
    }

    /// Batched suggestion: rank every request against **one** snapshot
    /// handle loaded up front. Runs in two phases so that no model
    /// inference ever happens under a session lock:
    ///
    /// 1. **Resolve** — walk the requests in order, carrying the stripe
    ///    lock across consecutive requests that hash to the same shard, and
    ///    copy each live context out as interned ids into one flat arena.
    ///    The critical section per request is a map probe plus one interner
    ///    lookup per context entry.
    /// 2. **Rank** — with all locks released, run `recommend_into` per
    ///    request through a single reused top-k buffer and render the
    ///    results.
    ///
    /// Results are returned in request order; callers that pre-group users
    /// by shard get maximal lock amortization for free. At most one stripe
    /// lock is ever held, and it is released before the next stripe is
    /// taken, so concurrent batches cannot deadlock whatever their request
    /// orders.
    pub fn suggest_batch(&self, requests: &[SuggestRequest], now: u64) -> Vec<Vec<Suggestion>> {
        self.suggests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let snapshot = self.current.load();
        let cutoff = self.tracker.config().idle_cutoff_secs;

        // Phase 1: copy covered contexts out as ids. `spans[i]` is the
        // request's range within the flat `ids` arena, or `None` when the
        // session is absent, expired, or its context is uncovered.
        let mut ids: Vec<sqp_common::QueryId> = Vec::new();
        let mut spans: Vec<Option<(usize, usize)>> = Vec::with_capacity(requests.len());
        let mut scratch: Vec<sqp_common::QueryId> = Vec::new();
        let mut held: Option<(usize, std::sync::MutexGuard<'_, crate::session::Shard>)> = None;
        for req in requests {
            let shard_idx = self.tracker.shard_index(req.user);
            if !matches!(&held, Some((idx, _)) if *idx == shard_idx) {
                // Release the previous stripe *before* locking the next: at
                // most one stripe lock is ever held, so concurrent batches
                // cannot form a lock-order cycle.
                drop(held.take());
                held = Some((shard_idx, self.tracker.lock_shard(shard_idx)));
                // Chaos seam: same semantics as in `track_and_suggest`.
                self.hazard.strike(&self.shard_sites[shard_idx]);
            }
            let (_, guard) = held.as_mut().expect("stripe lock just taken");
            let covered = match guard.sessions.get(&req.user) {
                Some(state) if now.saturating_sub(state.last_seen) <= cutoff => {
                    snapshot.resolve_context_into(state.ring.iter(), &mut scratch)
                }
                _ => false,
            };
            if covered {
                let start = ids.len();
                ids.extend_from_slice(&scratch);
                spans.push(Some((start, ids.len())));
            } else {
                spans.push(None);
            }
        }
        drop(held);

        // Phase 2: model inference and rendering, lock-free.
        let mut topk: Vec<sqp_common::topk::Scored> = Vec::new();
        let mut out: Vec<Vec<Suggestion>> = Vec::with_capacity(requests.len());
        for (req, span) in requests.iter().zip(&spans) {
            let Some((start, end)) = span else {
                out.push(Vec::new());
                continue;
            };
            snapshot.recommend_ids_into(&ids[*start..*end], req.k, &mut topk);
            let mut rendered = Vec::with_capacity(topk.len());
            snapshot.render_into(&topk, &mut rendered);
            out.push(rendered);
        }
        out
    }

    /// Stateless suggestion for an explicit context (oldest query first),
    /// bypassing the session tracker.
    pub fn suggest_context(&self, context: &[&str], k: usize) -> Vec<Suggestion> {
        self.suggests.fetch_add(1, Ordering::Relaxed);
        self.current.load().suggest(context, k)
    }

    /// Atomically publish a freshly trained snapshot; in-flight requests
    /// finish on the snapshot they loaded, later requests see the new one.
    /// Returns the new model generation.
    pub fn publish(&self, snapshot: Arc<ModelSnapshot>) -> u64 {
        self.current.store(snapshot)
    }

    /// Handle to the snapshot currently serving.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.current.load()
    }

    /// How many publications have occurred (0 = still on the initial model).
    pub fn generation(&self) -> u64 {
        self.current.generation()
    }

    /// Drop sessions idle past the cutoff at `now`; returns how many.
    pub fn evict_idle(&self, now: u64) -> usize {
        let evicted = self.tracker.evict_idle(now);
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Sessions currently resident in the tracker. Lock-free (a gauge
    /// maintained under the stripe locks), so stats pollers never contend
    /// with serving.
    pub fn active_sessions(&self) -> usize {
        self.tracker.active_sessions()
    }

    /// The underlying tracker (for direct context inspection).
    pub fn tracker(&self) -> &SessionTracker {
        &self.tracker
    }

    /// Snapshot of the operation counters and gauges. Entirely atomic
    /// loads — no stripe lock is taken, so this is safe to poll at any
    /// frequency (a router snapshots every replica per stats call).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            tracks: self.tracks.load(Ordering::Relaxed),
            suggests: self.suggests.load(Ordering::Relaxed),
            publishes: self.current.generation(),
            shed: self.shed.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            active_sessions: self.tracker.active_sessions() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ModelSpec, TrainingConfig};
    use sqp_logsim::RawLogRecord;

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn corpus(prefix: &str) -> Vec<RawLogRecord> {
        let mut records = Vec::new();
        for u in 0..6 {
            records.push(rec(u, 100, "start"));
            records.push(rec(u, 160, &format!("{prefix}::next")));
        }
        records
    }

    fn snapshot(prefix: &str) -> Arc<ModelSnapshot> {
        Arc::new(ModelSnapshot::from_raw_logs(
            &corpus(prefix),
            &TrainingConfig {
                model: ModelSpec::Adjacency,
                ..TrainingConfig::default()
            },
        ))
    }

    fn engine() -> ServeEngine {
        ServeEngine::new(snapshot("old"), EngineConfig::default())
    }

    #[test]
    fn tracked_session_gets_suggestions() {
        let e = engine();
        e.track(1, "start", 100);
        let got = e.suggest(1, 3, 110);
        assert_eq!(got[0].query, "old::next");
        assert!(e.suggest(2, 3, 110).is_empty(), "unknown user");
    }

    #[test]
    fn track_and_suggest_round_trip() {
        let e = engine();
        let got = e.track_and_suggest(7, "start", 3, 50);
        assert_eq!(got[0].query, "old::next");
        let stats = e.stats();
        assert_eq!((stats.tracks, stats.suggests), (1, 1));
    }

    #[test]
    fn batch_matches_individual_calls() {
        let e = engine();
        for u in 0..32 {
            e.track(u, "start", 100);
        }
        e.track(100, "start", 100);
        e.track(100, "old::next", 160); // context uncovered for Adjacency
        let reqs: Vec<SuggestRequest> = (0..32)
            .chain([100, 555]) // 555 never tracked
            .map(|user| SuggestRequest { user, k: 2 })
            .collect();
        let batch = e.suggest_batch(&reqs, 200);
        assert_eq!(batch.len(), 34);
        for (req, got) in reqs.iter().zip(&batch) {
            assert_eq!(*got, e.suggest(req.user, req.k, 200), "user {}", req.user);
        }
        assert!(batch[33].is_empty());
    }

    #[test]
    fn publish_swaps_the_model_for_new_requests() {
        let e = engine();
        e.track(1, "start", 100);
        assert_eq!(e.suggest(1, 1, 110)[0].query, "old::next");
        assert_eq!(e.generation(), 0);
        let held = e.snapshot();
        assert_eq!(e.publish(snapshot("new")), 1);
        assert_eq!(e.suggest(1, 1, 120)[0].query, "new::next");
        // The pre-publish handle still serves the old vocabulary.
        assert_eq!(held.suggest(&["start"], 1)[0].query, "old::next");
        assert_eq!(e.stats().publishes, 1);
    }

    #[test]
    fn suggest_context_is_stateless() {
        let e = engine();
        assert_eq!(e.suggest_context(&["start"], 1)[0].query, "old::next");
        assert!(e.suggest_context(&["unseen"], 1).is_empty());
    }

    #[test]
    fn admission_budget_sheds_and_recovers() {
        let e = ServeEngine::new(
            snapshot("old"),
            EngineConfig {
                max_in_flight: 2,
                ..EngineConfig::default()
            },
        );
        let p1 = e.admit().unwrap();
        let _p2 = e.admit().unwrap();
        assert_eq!(e.in_flight(), 2);
        assert_eq!(e.admit().unwrap_err(), Overloaded { limit: 2 });
        assert_eq!(e.stats().shed, 1);
        // Releasing a permit frees the slot.
        drop(p1);
        assert_eq!(e.in_flight(), 1);
        assert!(e.try_suggest(1, 3, 100).is_ok());
        assert_eq!(e.in_flight(), 1, "try_suggest released its permit");
    }

    #[test]
    fn zero_budget_means_unlimited() {
        let e = engine();
        let permits: Vec<_> = (0..64).map(|_| e.admit().unwrap()).collect();
        assert_eq!(e.in_flight(), 64);
        assert_eq!(e.stats().shed, 0);
        drop(permits);
        assert_eq!(e.in_flight(), 0);
        e.track(1, "start", 100);
        assert_eq!(e.try_suggest(1, 3, 110).unwrap()[0].query, "old::next");
    }

    #[test]
    fn hazard_panic_poisons_but_engine_keeps_serving() {
        use sqp_common::hazard::Hazard;
        use std::sync::atomic::AtomicBool;

        struct PanicOnce(AtomicBool);
        impl Hazard for PanicOnce {
            fn strike(&self, _site: &str) {
                if !self.0.swap(true, Ordering::SeqCst) {
                    panic!("injected chaos panic (test)");
                }
            }
        }

        let e = Arc::new(ServeEngine::with_hazard(
            snapshot("old"),
            EngineConfig {
                max_in_flight: 8,
                ..EngineConfig::default()
            },
            Arc::new(PanicOnce(AtomicBool::new(false))),
        ));
        // First request panics mid-critical-section, poisoning its stripe
        // and (via the held admission permit's Drop) releasing its slot.
        let crashed = Arc::clone(&e);
        let joined = std::thread::spawn(move || {
            let _ = crashed.try_track_and_suggest(7, "start", 3, 100);
        })
        .join();
        assert!(joined.is_err(), "injected panic should escape the worker");
        assert_eq!(e.in_flight(), 0, "crashed request leaked its permit");
        // The same user (same stripe) keeps serving after poison recovery.
        let got = e.try_track_and_suggest(7, "start", 3, 110).unwrap();
        assert_eq!(got[0].query, "old::next");
    }

    #[test]
    fn draining_serves_existing_sessions_and_refuses_new_ones() {
        let e = engine();
        e.track(1, "start", 100);
        e.set_draining(true);
        assert!(e.is_draining());
        // Existing live session: still served, context still grows.
        let got = e.track_and_suggest(1, "old::next", 3, 110);
        assert!(got.is_empty(), "adjacency context of 2 is uncovered");
        assert_eq!(e.tracker().context(1, 120), vec!["start", "old::next"]);
        // New user: the track is refused with the sentinel outcome.
        let out = e.track(2, "start", 120);
        assert_eq!(
            out,
            TrackOutcome {
                new_session: false,
                context_len: 0
            }
        );
        assert!(e.track_and_suggest(3, "start", 3, 120).is_empty());
        assert_eq!(e.drain_refused(), 2);
        assert_eq!(e.active_sessions(), 1, "refused tracks must not insert");
        // Suggests for existing sessions keep working while draining.
        assert_eq!(e.suggest(1, 3, 130).len(), 0);
        e.track(1, "start", 140);
        // Leaving draining mode re-admits new sessions.
        e.set_draining(false);
        assert!(e.track(2, "start", 150).new_session);
    }

    #[test]
    fn eviction_passthrough() {
        let e = engine();
        e.track(1, "start", 0);
        assert_eq!(e.active_sessions(), 1);
        assert_eq!(e.evict_idle(u64::MAX / 2), 1);
        assert_eq!(e.active_sessions(), 0);
    }

    #[test]
    fn stats_expose_evictions_and_residency_lock_free() {
        let e = engine();
        e.track(1, "start", 0);
        e.track_and_suggest(2, "start", 1, 0);
        let stats = e.stats();
        assert_eq!(stats.active_sessions, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(e.evict_idle(u64::MAX / 2), 2);
        let stats = e.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.active_sessions, 0);
        // Evictions are monotonic across repeated (empty) sweeps.
        assert_eq!(e.evict_idle(u64::MAX / 2), 0);
        assert_eq!(e.stats().evictions, 2);
    }
}
