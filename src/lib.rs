//! # sqp — Sequential Query Prediction for Web Query Recommendation
//!
//! Umbrella crate re-exporting the whole workspace. See the README for the
//! architecture overview and the `examples/` directory for runnable demos.
//!
//! The workspace reproduces He, Jiang, Liao, Hoi, Chang, Lim & Li,
//! *Web Query Recommendation via Sequential Query Prediction*, ICDE 2009.

pub mod service;

pub use sqp_common as common;
pub use sqp_core as core;
pub use sqp_eval as eval;
pub use sqp_logsim as logsim;
pub use sqp_net as net;
pub use sqp_router as router;
pub use sqp_serve as serve;
pub use sqp_sessions as sessions;
pub use sqp_store as store;

pub use service::{RecommenderService, ServiceConfig, ServiceModel, Suggestion};

/// Convenient glob-import surface for applications and examples.
pub mod prelude {
    pub use crate::service::{RecommenderService, ServiceConfig, ServiceModel, Suggestion};
    pub use sqp_common::{QueryId, QuerySeq};
    pub use sqp_core::Recommender;
    pub use sqp_net::{
        EndpointConfig, EndpointSetError, NetClient, NetServer, RemoteConfig, RemoteEngine,
        RemoteOutcome, ServeAnswer, ServerConfig,
    };
    pub use sqp_router::{HandoffReport, MembershipError, RouterConfig, RouterEngine, RouterStats};
    pub use sqp_serve::{EngineConfig, ModelSnapshot, ServeEngine, ServeSurface, SuggestRequest};
    pub use sqp_store::{
        load_snapshot, save_snapshot, RetrainConfig, Retrainer, RollPolicy, RouterPublish,
        SnapshotError, SnapshotMeta, WarmStart,
    };
}

// Compile and run the README's Rust snippets as doc-tests so the quickstart
// can never drift from the real API again.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}
