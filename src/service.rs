//! High-level recommendation service: strings in, strings out.
//!
//! The crates underneath operate on interned ids for speed; an application
//! embedding query suggestion wants none of that. [`RecommenderService`]
//! wraps a [`ModelSnapshot`] — the immutable
//! trained bundle from `sqp-serve` — and exposes the two calls a search
//! front-end needs: build from raw logs, and suggest for a textual context.
//!
//! For concurrent traffic (per-user session tracking, batched suggestion,
//! zero-downtime retrains) promote the service into a
//! [`ServeEngine`] with
//! [`RecommenderService::into_engine`] — or, when one engine's tracker and
//! stripes are the bottleneck, into a replicated
//! [`RouterEngine`] tier with
//! [`RecommenderService::into_router`].

use std::sync::Arc;

use sqp_logsim::RawLogRecord;
use sqp_router::{RouterConfig, RouterEngine};
use sqp_serve::{EngineConfig, ModelSnapshot, ServeEngine};

pub use sqp_serve::{ModelSpec as ServiceModel, Suggestion, TrainingConfig as ServiceConfig};

/// A trained, self-contained query-suggestion service.
///
/// This is a thin, single-handle façade over an immutable
/// [`ModelSnapshot`]; cloning via [`snapshot`](RecommenderService::snapshot)
/// and publishing into a [`ServeEngine`] are free of retraining cost.
pub struct RecommenderService {
    snapshot: Arc<ModelSnapshot>,
}

impl RecommenderService {
    /// Build from raw click-log records: sessionize, aggregate, reduce,
    /// train.
    pub fn from_raw_logs(records: &[RawLogRecord], cfg: &ServiceConfig) -> Self {
        Self {
            snapshot: Arc::new(ModelSnapshot::from_raw_logs(records, cfg)),
        }
    }

    /// Wrap an existing snapshot (e.g. one retrained off-thread).
    pub fn from_snapshot(snapshot: Arc<ModelSnapshot>) -> Self {
        Self { snapshot }
    }

    /// Warm-start a service from a snapshot file written by
    /// [`save`](RecommenderService::save) (or any v3 snapshot): no raw
    /// logs, no retraining — milliseconds instead of a full pipeline run.
    ///
    /// # Examples
    ///
    /// ```
    /// use sqp::prelude::*;
    /// use sqp::logsim::RawLogRecord;
    ///
    /// let rec = |machine, ts, q: &str| RawLogRecord {
    ///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
    /// };
    /// let records: Vec<_> = (0..8)
    ///     .flat_map(|u| [rec(u, 100, "kidney stones"), rec(u, 200, "kidney stone symptoms")])
    ///     .collect();
    /// let svc = RecommenderService::from_raw_logs(&records, &ServiceConfig {
    ///     model: ServiceModel::Adjacency,
    ///     ..ServiceConfig::default()
    /// });
    ///
    /// let path = std::env::temp_dir().join(format!("sqp-doc-svc-{}.sqps", std::process::id()));
    /// svc.save(&path, 0).unwrap();
    /// let warm = RecommenderService::load(&path).unwrap();
    /// assert_eq!(warm.suggest(&["kidney stones"], 1), svc.suggest(&["kidney stones"], 1));
    /// # std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, sqp_store::SnapshotError> {
        let (snapshot, _meta) = sqp_store::load_snapshot(path)?;
        Ok(Self::from_snapshot(Arc::new(snapshot)))
    }

    /// Persist the service's snapshot (model + interner + metadata) as one
    /// v3 file at `path`, written atomically. `generation` tags which
    /// (re)train produced it — see `FORMAT.md` for the byte layout.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
        generation: u64,
    ) -> Result<(), sqp_store::SnapshotError> {
        let meta = sqp_store::SnapshotMeta::describe(
            &self.snapshot,
            generation,
            // Raw-record provenance is not tracked at service level; the
            // retrainer records it when it owns the corpus window.
            0,
        );
        sqp_store::save_snapshot(path, &self.snapshot, &meta)
    }

    /// Top-`k` suggestions for the session so far (oldest query first).
    /// Empty when the context is uncovered.
    ///
    /// # Examples
    ///
    /// ```
    /// use sqp::prelude::*;
    /// use sqp::logsim::RawLogRecord;
    ///
    /// let rec = |machine, ts, q: &str| RawLogRecord {
    ///     machine_id: machine, timestamp: ts, query: q.into(), clicks: vec![],
    /// };
    /// let mut records = Vec::new();
    /// for u in 0..10 {
    ///     records.push(rec(u, 100, "kidney stones"));
    ///     records.push(rec(u, 200, "kidney stone symptoms"));
    /// }
    ///
    /// let svc = RecommenderService::from_raw_logs(&records, &ServiceConfig::default());
    /// let suggestions = svc.suggest(&["kidney stones"], 3);
    /// assert_eq!(suggestions[0].query, "kidney stone symptoms");
    /// ```
    pub fn suggest(&self, context: &[&str], k: usize) -> Vec<Suggestion> {
        self.snapshot.suggest(context, k)
    }

    /// Can the service say anything for this context?
    pub fn covers(&self, context: &[&str]) -> bool {
        self.snapshot.covers(context)
    }

    /// Name of the underlying model.
    pub fn model_name(&self) -> &str {
        self.snapshot.model_name()
    }

    /// Session mass the model was trained on.
    pub fn trained_sessions(&self) -> u64 {
        self.snapshot.trained_sessions()
    }

    /// Distinct queries known to the service.
    pub fn vocabulary_size(&self) -> usize {
        self.snapshot.vocabulary_size()
    }

    /// Approximate model heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.snapshot.memory_bytes()
    }

    /// Handle to the underlying immutable snapshot — publishable into a
    /// running [`ServeEngine`] via
    /// [`publish`](sqp_serve::ServeEngine::publish).
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// Promote into a concurrent serving engine with session tracking,
    /// batched suggestion, and hot-swappable retrains.
    pub fn into_engine(self, cfg: EngineConfig) -> ServeEngine {
        ServeEngine::new(self.snapshot, cfg)
    }

    /// Promote into a replicated serving tier: N independent engines
    /// behind consistent-hash user routing, with fan-out/rolling snapshot
    /// publication (see `sqp_store::rollout`) and per-replica health. The
    /// serve surface matches [`into_engine`](Self::into_engine)'s, so
    /// callers upgrade transparently when one engine stops being enough.
    pub fn into_router(self, cfg: RouterConfig) -> RouterEngine {
        RouterEngine::new(self.snapshot, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_core::{MvmmConfig, VmmConfig};

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn sample_records() -> Vec<RawLogRecord> {
        let mut records = Vec::new();
        // Ten users all refine "kidney stones" the same way.
        for u in 0..10 {
            records.push(rec(u, 100, "kidney stones"));
            records.push(rec(u, 200, "kidney stone symptoms"));
        }
        // Three of them go deeper.
        for u in 0..3 {
            records.push(rec(u + 100, 100, "kidney stones"));
            records.push(rec(u + 100, 260, "kidney stone symptoms"));
            records.push(rec(u + 100, 420, "kidney stone symptoms in women"));
        }
        records.push(rec(999, 50, "muzzle brake"));
        records
    }

    fn service(model: ServiceModel) -> RecommenderService {
        RecommenderService::from_raw_logs(
            &sample_records(),
            &ServiceConfig {
                model,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn suggests_the_common_refinement() {
        for model in [
            ServiceModel::Adjacency,
            ServiceModel::Vmm(VmmConfig::with_epsilon(0.05)),
            ServiceModel::Mvmm(MvmmConfig::small()),
        ] {
            let svc = service(model);
            let suggestions = svc.suggest(&["kidney stones"], 3);
            assert!(!suggestions.is_empty(), "{}", svc.model_name());
            assert_eq!(suggestions[0].query, "kidney stone symptoms");
            assert!(suggestions[0].score > 0.0);
        }
    }

    #[test]
    fn context_deepens_the_suggestion() {
        let svc = service(ServiceModel::Vmm(VmmConfig::with_epsilon(0.0)));
        let suggestions = svc.suggest(&["kidney stones", "kidney stone symptoms"], 3);
        assert_eq!(suggestions[0].query, "kidney stone symptoms in women");
    }

    #[test]
    fn unknown_current_query_is_uncovered() {
        let svc = service(ServiceModel::Adjacency);
        assert!(svc.suggest(&["never seen before"], 5).is_empty());
        assert!(!svc.covers(&["never seen before"]));
        assert!(svc.suggest(&[], 5).is_empty());
        // Unknown *prefix* is fine.
        assert!(svc.covers(&["never seen before", "kidney stones"]));
    }

    #[test]
    fn terminal_queries_are_uncovered_for_ordered_models() {
        let svc = service(ServiceModel::Adjacency);
        // "muzzle brake" only appears as a singleton session.
        assert!(!svc.covers(&["muzzle brake"]));
    }

    #[test]
    fn service_metadata() {
        let svc = service(ServiceModel::Vmm(VmmConfig::with_epsilon(0.05)));
        assert_eq!(svc.model_name(), "VMM (0.05)");
        assert_eq!(svc.vocabulary_size(), 4);
        assert_eq!(svc.trained_sessions(), 14);
        assert!(svc.memory_bytes() > 0);
    }

    #[test]
    fn reduction_threshold_filters_rare_sessions() {
        let svc = RecommenderService::from_raw_logs(
            &sample_records(),
            &ServiceConfig {
                reduction_threshold: 5,
                model: ServiceModel::Adjacency,
                ..ServiceConfig::default()
            },
        );
        // Only the 10x session survives; the deep refinement is gone.
        assert!(svc.covers(&["kidney stones"]));
        assert!(!svc.covers(&["kidney stone symptoms"]));
    }

    #[test]
    fn save_load_roundtrip_per_model() {
        let dir = std::env::temp_dir().join(format!("sqp-svc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, model) in [
            ("adj", ServiceModel::Adjacency),
            ("cooc", ServiceModel::Cooccurrence),
            ("ngram", ServiceModel::NGram),
            (
                "backoff",
                ServiceModel::Backoff(sqp_core::BackoffConfig::default()),
            ),
            ("vmm", ServiceModel::Vmm(VmmConfig::with_epsilon(0.05))),
        ] {
            let svc = service(model);
            let path = dir.join(format!("{name}.sqps"));
            svc.save(&path, 4).unwrap();
            let warm = RecommenderService::load(&path).unwrap();
            assert_eq!(warm.model_name(), svc.model_name());
            assert_eq!(
                warm.suggest(&["kidney stones"], 3),
                svc.suggest(&["kidney stones"], 3),
                "{name}"
            );
        }
        // The MVMM default has no persistable form — typed error, no panic.
        let svc = service(ServiceModel::Mvmm(MvmmConfig::small()));
        assert!(svc.save(dir.join("mvmm.sqps"), 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_handle_is_shared_not_copied() {
        let svc = service(ServiceModel::Adjacency);
        let a = svc.snapshot();
        let b = svc.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn into_engine_serves_the_same_model() {
        let svc = service(ServiceModel::Adjacency);
        let expected = svc.suggest(&["kidney stones"], 2);
        let engine = svc.into_engine(sqp_serve::EngineConfig::default());
        engine.track(1, "kidney stones", 100);
        assert_eq!(engine.suggest(1, 2, 101), expected);
    }

    #[test]
    fn into_router_serves_the_same_model_on_every_replica() {
        let svc = service(ServiceModel::Adjacency);
        let expected = svc.suggest(&["kidney stones"], 2);
        let router = svc.into_router(RouterConfig::default());
        for user in [1u64, 2, 3, 4, 5, 6, 7, 8] {
            assert_eq!(
                router.track_and_suggest(user, "kidney stones", 2, 100),
                expected,
                "user {user} (replica {})",
                router.replica_for(user)
            );
        }
    }
}
