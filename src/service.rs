//! High-level recommendation service: strings in, strings out.
//!
//! The crates underneath operate on interned ids for speed; an application
//! embedding query suggestion wants none of that. [`RecommenderService`]
//! owns the interner and a trained model, and exposes the two calls a
//! search front-end needs: build from raw logs, and suggest for a textual
//! context.

use sqp_common::{Interner, QueryId};
use sqp_core::{Mvmm, MvmmConfig, Recommender, Vmm, VmmConfig};
use sqp_logsim::RawLogRecord;
use sqp_sessions::{aggregate, reduce, segment_with_parallelism, DEFAULT_CUTOFF_SECS};

/// Which model the service trains.
#[derive(Clone, Debug)]
pub enum ServiceModel {
    /// The paper's MVMM (default: the 11-component ε sweep).
    Mvmm(MvmmConfig),
    /// A single VMM.
    Vmm(VmmConfig),
    /// The Adjacency baseline (smallest footprint).
    Adjacency,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel::Mvmm(MvmmConfig::epsilon_sweep())
    }
}

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Session cutoff for the 30-minute rule, in seconds.
    pub session_cutoff_secs: u64,
    /// Drop aggregated sessions with frequency ≤ this.
    pub reduction_threshold: u64,
    /// The model to train.
    pub model: ServiceModel,
    /// Shard segmentation and window counting across threads. Training is
    /// deterministic either way; production builds want this on.
    pub parallel: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            session_cutoff_secs: DEFAULT_CUTOFF_SECS,
            reduction_threshold: 0,
            model: ServiceModel::default(),
            parallel: true,
        }
    }
}

/// A ranked suggestion.
#[derive(Clone, Debug, PartialEq)]
pub struct Suggestion {
    /// Suggested query text.
    pub query: String,
    /// Model score (higher is better).
    pub score: f64,
}

/// A trained, self-contained query-suggestion service.
pub struct RecommenderService {
    interner: Interner,
    model: Box<dyn Recommender>,
    trained_sessions: u64,
}

impl RecommenderService {
    /// Build from raw click-log records: sessionize, aggregate, reduce,
    /// train.
    pub fn from_raw_logs(records: &[RawLogRecord], cfg: &ServiceConfig) -> Self {
        let sessions = segment_with_parallelism(records, cfg.session_cutoff_secs, cfg.parallel);
        let mut interner = Interner::new();
        let aggregated = aggregate(&sessions, &mut interner);
        let (reduced, _) = reduce(&aggregated, cfg.reduction_threshold);
        let trained_sessions = reduced.total_sessions();
        let model: Box<dyn Recommender> = match &cfg.model {
            ServiceModel::Mvmm(c) => Box::new(Mvmm::train(&reduced.sessions, c)),
            ServiceModel::Vmm(c) => {
                Box::new(Vmm::train(&reduced.sessions, c.parallel(cfg.parallel)))
            }
            ServiceModel::Adjacency => Box::new(sqp_core::Adjacency::train(&reduced.sessions)),
        };
        RecommenderService {
            interner,
            model,
            trained_sessions,
        }
    }

    /// Resolve a textual context to ids; unknown queries stay in the context
    /// as placeholders only if they are not the final query (suffix-matching
    /// models skip an unknown prefix; an unknown *current* query means no
    /// evidence at all).
    fn resolve_context(&self, context: &[&str]) -> Option<Vec<QueryId>> {
        if context.is_empty() {
            return None;
        }
        // The final query must be known.
        self.interner.get(context[context.len() - 1])?;
        let ids: Vec<QueryId> = context
            .iter()
            .filter_map(|q| self.interner.get(q))
            .collect();
        Some(ids)
    }

    /// Top-`k` suggestions for the session so far (oldest query first).
    /// Empty when the context is uncovered.
    pub fn suggest(&self, context: &[&str], k: usize) -> Vec<Suggestion> {
        let Some(ids) = self.resolve_context(context) else {
            return Vec::new();
        };
        self.model
            .recommend(&ids, k)
            .into_iter()
            .map(|s| Suggestion {
                query: self.interner.resolve(s.query).to_owned(),
                score: s.score,
            })
            .collect()
    }

    /// Can the service say anything for this context?
    pub fn covers(&self, context: &[&str]) -> bool {
        self.resolve_context(context)
            .is_some_and(|ids| self.model.covers(&ids))
    }

    /// Name of the underlying model.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }

    /// Session mass the model was trained on.
    pub fn trained_sessions(&self) -> u64 {
        self.trained_sessions
    }

    /// Distinct queries known to the service.
    pub fn vocabulary_size(&self) -> usize {
        self.interner.len()
    }

    /// Approximate model heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.model.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
        RawLogRecord {
            machine_id: machine,
            timestamp: ts,
            query: q.into(),
            clicks: vec![],
        }
    }

    fn sample_records() -> Vec<RawLogRecord> {
        let mut records = Vec::new();
        // Ten users all refine "kidney stones" the same way.
        for u in 0..10 {
            records.push(rec(u, 100, "kidney stones"));
            records.push(rec(u, 200, "kidney stone symptoms"));
        }
        // Three of them go deeper.
        for u in 0..3 {
            records.push(rec(u + 100, 100, "kidney stones"));
            records.push(rec(u + 100, 260, "kidney stone symptoms"));
            records.push(rec(u + 100, 420, "kidney stone symptoms in women"));
        }
        records.push(rec(999, 50, "muzzle brake"));
        records
    }

    fn service(model: ServiceModel) -> RecommenderService {
        RecommenderService::from_raw_logs(
            &sample_records(),
            &ServiceConfig {
                model,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn suggests_the_common_refinement() {
        for model in [
            ServiceModel::Adjacency,
            ServiceModel::Vmm(VmmConfig::with_epsilon(0.05)),
            ServiceModel::Mvmm(MvmmConfig::small()),
        ] {
            let svc = service(model);
            let suggestions = svc.suggest(&["kidney stones"], 3);
            assert!(!suggestions.is_empty(), "{}", svc.model_name());
            assert_eq!(suggestions[0].query, "kidney stone symptoms");
            assert!(suggestions[0].score > 0.0);
        }
    }

    #[test]
    fn context_deepens_the_suggestion() {
        let svc = service(ServiceModel::Vmm(VmmConfig::with_epsilon(0.0)));
        let suggestions = svc.suggest(&["kidney stones", "kidney stone symptoms"], 3);
        assert_eq!(suggestions[0].query, "kidney stone symptoms in women");
    }

    #[test]
    fn unknown_current_query_is_uncovered() {
        let svc = service(ServiceModel::Adjacency);
        assert!(svc.suggest(&["never seen before"], 5).is_empty());
        assert!(!svc.covers(&["never seen before"]));
        assert!(svc.suggest(&[], 5).is_empty());
        // Unknown *prefix* is fine.
        assert!(svc.covers(&["never seen before", "kidney stones"]));
    }

    #[test]
    fn terminal_queries_are_uncovered_for_ordered_models() {
        let svc = service(ServiceModel::Adjacency);
        // "muzzle brake" only appears as a singleton session.
        assert!(!svc.covers(&["muzzle brake"]));
    }

    #[test]
    fn service_metadata() {
        let svc = service(ServiceModel::Vmm(VmmConfig::with_epsilon(0.05)));
        assert_eq!(svc.model_name(), "VMM (0.05)");
        assert_eq!(svc.vocabulary_size(), 4);
        assert_eq!(svc.trained_sessions(), 14);
        assert!(svc.memory_bytes() > 0);
    }

    #[test]
    fn reduction_threshold_filters_rare_sessions() {
        let svc = RecommenderService::from_raw_logs(
            &sample_records(),
            &ServiceConfig {
                reduction_threshold: 5,
                model: ServiceModel::Adjacency,
                ..ServiceConfig::default()
            },
        );
        // Only the 10x session survives; the deep refinement is gone.
        assert!(svc.covers(&["kidney stones"]));
        assert!(!svc.covers(&["kidney stone symptoms"]));
    }
}
