//! The full model lifecycle, live: cold-start training, snapshot
//! persistence, warm start, and a background retrain loop publishing new
//! generations into a serving engine while it answers traffic.
//!
//! ```sh
//! cargo run --release --example retrain_loop
//! ```

use sqp::logsim::RawLogRecord;
use sqp::prelude::*;
use sqp::serve::{ModelSpec, TrainingConfig};
use std::time::{Duration, Instant};

fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
    RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("sqp_retrain_loop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let training = TrainingConfig {
        model: ModelSpec::Adjacency,
        ..TrainingConfig::default()
    };

    // ── Cold start: the nightly build trains from raw logs and persists
    //    generation 0 as a snapshot file.
    let seed: Vec<RawLogRecord> = (0..2_000u64)
        .flat_map(|u| [rec(u, 100, "rust"), rec(u, 160, "rust book")])
        .collect();
    let t = Instant::now();
    let trained = ModelSnapshot::from_raw_logs(&seed, &training);
    let cold = t.elapsed();
    let gen0 = dir.join(sqp::store::snapshot_file_name(0));
    save_snapshot(
        &gen0,
        &trained,
        &SnapshotMeta::describe(&trained, 0, seed.len() as u64),
    )
    .unwrap();
    println!(
        "cold start: trained {} sessions in {:.1?}, snapshot = {} bytes",
        trained.trained_sessions(),
        cold,
        std::fs::metadata(&gen0).unwrap().len()
    );

    // ── Warm start: a serving process boots from the file alone.
    let t = Instant::now();
    let engine = ServeEngine::from_path(&gen0, EngineConfig::default()).unwrap();
    println!(
        "warm start: engine ready in {:.1?} (no retraining)",
        t.elapsed()
    );
    println!(
        "  suggest(rust) -> {:?}",
        engine.suggest_context(&["rust"], 1)[0].query
    );

    // ── Retrain loop: traffic flows, fresh records buffer, generations
    //    publish — serving never pauses.
    let retrainer = Retrainer::new(
        RetrainConfig {
            training,
            min_batch: 500,
            snapshot_dir: Some(dir.clone()),
            keep: 3,
            ..RetrainConfig::default()
        },
        seed,
    );
    std::thread::scope(|scope| {
        let loop_handle = retrainer.spawn(scope, &engine);
        // Simulated live traffic: users shift toward a new refinement.
        for wave in 1..=3u64 {
            for u in 0..300u64 {
                let machine = wave * 100_000 + u;
                retrainer.ingest(rec(machine, 100, "rust"));
                retrainer.ingest(rec(machine, 160, &format!("rust {}", wave_topic(wave))));
                // The engine keeps serving while the retrainer works.
                engine.track_and_suggest(machine, "rust", 3, wave * 10);
            }
            while retrainer.generations_published() < wave {
                std::thread::sleep(Duration::from_millis(1));
            }
            println!(
                "generation {} published mid-traffic; suggest(rust) -> {:?}",
                engine.generation(),
                engine
                    .suggest_context(&["rust"], 3)
                    .iter()
                    .map(|s| s.query.clone())
                    .collect::<Vec<_>>()
            );
        }
        retrainer.shutdown();
        let report = loop_handle.join().unwrap();
        println!(
            "retrain loop: {} generations from {} ingested records, {} snapshots on disk",
            report.published, report.records_ingested, report.snapshots_written
        );
    });

    // ── Rotation kept only the newest generations; any of them can
    //    warm-start the next process or roll back a bad model.
    let mut kept: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    kept.sort();
    println!("snapshot dir after rotation: {kept:?}");
    let service = RecommenderService::load(dir.join(kept.last().unwrap())).unwrap();
    println!(
        "rollback/warm-start check: latest file serves {:?}",
        service.suggest(&["rust"], 1)[0].query
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

fn wave_topic(wave: u64) -> &'static str {
    match wave {
        1 => "async",
        2 => "atomics",
        _ => "lifetimes",
    }
}
