//! Online query recommendation, the way a search engine would deploy it:
//! replay live user sessions query by query, showing the top-5 suggestions
//! after every keystroke-enter — the paper's "online query recommendation
//! phase" (§I-B).
//!
//! ```sh
//! cargo run --release --example session_stream
//! ```

use sqp::core::{Mvmm, MvmmConfig, Recommender, Vmm, VmmConfig};
use sqp::logsim::SimConfig;
use sqp::sessions::{process, PipelineConfig};
use sqp_common::QueryId;

fn main() {
    let logs = sqp::logsim::generate(&SimConfig::small(20_000, 4_000, 11));
    let processed = process(&logs, &PipelineConfig::default());
    let sessions = &processed.train.aggregated.sessions;

    let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));
    let mvmm = Mvmm::train(sessions, &MvmmConfig::small());
    println!(
        "models ready: VMM(0.05) with {} PST nodes; MVMM with {} components\n",
        vmm.node_count(),
        mvmm.components().len()
    );

    // Replay a few multi-query test sessions through the recommender.
    let mut shown = 0;
    for session in &processed.test_sessions {
        if session.queries.len() < 3 {
            continue;
        }
        // Resolve the session to ids; skip sessions with unseen queries so
        // the demo shows the interesting (covered) path.
        let ids: Option<Vec<QueryId>> = session
            .queries
            .iter()
            .map(|q| processed.interner.get(q))
            .collect();
        let Some(ids) = ids else { continue };

        println!("— session (machine {}) —", session.machine_id);
        for i in 0..ids.len() {
            println!("  user types: {:?}", session.queries[i]);
            if i + 1 == ids.len() {
                break;
            }
            let ctx = &ids[..i + 1];
            let recs = mvmm.recommend(ctx, 5);
            if recs.is_empty() {
                println!("    (no suggestions — uncovered context)");
            } else {
                let rendered: Vec<String> = recs
                    .iter()
                    .map(|r| processed.interner.resolve(r.query).to_owned())
                    .collect();
                println!("    suggestions: {}", rendered.join(" | "));
                // Did we get the actual next query into the top-5?
                let actual = ids[i + 1];
                let hit = recs.iter().position(|r| r.query == actual);
                match hit {
                    Some(pos) => println!("    ✓ actual next query at position {}", pos + 1),
                    None => println!("    ✗ actual next query not in top-5"),
                }
            }
        }
        println!();
        shown += 1;
        if shown >= 5 {
            break;
        }
    }

    // Show the paper's context-disambiguation effect: the same last query,
    // two different histories, different suggestions.
    println!("— context sensitivity (the paper's \"Indonesia ⇒ Java\" effect) —");
    let mut demos = 0;
    'outer: for e1 in &processed.ground_truth.entries {
        if e1.context.len() != 2 {
            continue;
        }
        for e2 in &processed.ground_truth.entries {
            if e2.context.len() == 2
                && e1.context.last() == e2.context.last()
                && e1.context[0] != e2.context[0]
            {
                let r1 = mvmm.recommend(&e1.context, 3);
                let r2 = mvmm.recommend(&e2.context, 3);
                if r1.is_empty() || r2.is_empty() || r1[0].query == r2[0].query {
                    continue;
                }
                let render = |ctx: &[QueryId]| {
                    ctx.iter()
                        .map(|q| processed.interner.resolve(*q).to_owned())
                        .collect::<Vec<_>>()
                        .join(" => ")
                };
                println!("  context A: {}", render(&e1.context));
                println!(
                    "    top suggestion: {}",
                    processed.interner.resolve(r1[0].query)
                );
                println!("  context B: {}", render(&e2.context));
                println!(
                    "    top suggestion: {}",
                    processed.interner.resolve(r2[0].query)
                );
                println!("  (same current query, different history, different suggestion)\n");
                demos += 1;
                if demos >= 3 {
                    break 'outer;
                }
            }
        }
    }
    if demos == 0 {
        println!("  (no divergent pair found at this corpus size — rerun with more sessions)");
    }
}
