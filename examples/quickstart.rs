//! Quickstart: simulate a small search log, run the session pipeline, train
//! the paper's MVMM, and ask for query recommendations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sqp::core::{Mvmm, MvmmConfig, Recommender};
use sqp::logsim::SimConfig;
use sqp::sessions::{process, PipelineConfig};

fn main() {
    // 1. A small simulated log: 20k training sessions, 5k test sessions.
    let sim = SimConfig::small(20_000, 5_000, 7);
    let logs = sqp::logsim::generate(&sim);
    println!(
        "simulated {} training records / {} test records",
        logs.train.len(),
        logs.test.len()
    );

    // 2. The paper's pipeline: 30-minute sessionization, aggregation,
    //    frequency reduction.
    let processed = process(&logs, &PipelineConfig::default());
    println!(
        "pipeline: {} unique training sessions ({} mass), |Q| = {}",
        processed.train.aggregated.unique_sessions(),
        processed.train.aggregated.total_sessions(),
        processed.interner.len()
    );

    // 3. Train the Mixture Variable Memory Markov model.
    let mvmm = Mvmm::train(&processed.train.aggregated.sessions, &MvmmConfig::small());
    println!(
        "MVMM trained: {} components, sigmas = {:?}",
        mvmm.components().len(),
        mvmm.sigmas()
            .iter()
            .map(|s| format!("{s:.2}"))
            .collect::<Vec<_>>()
    );

    // 4. Recommend: take the highest-support test context the model covers
    //    (test-only tail queries are legitimately uncovered — that is the
    //    paper's coverage metric) and suggest the next query.
    let mut by_support: Vec<_> = processed
        .ground_truth
        .entries
        .iter()
        .filter(|e| e.context.len() >= 2)
        .collect();
    by_support.sort_by_key(|e| std::cmp::Reverse(e.support));
    let entry = by_support
        .iter()
        .find(|e| mvmm.covers(&e.context))
        .expect("no covered test context — model or pipeline is broken");

    println!("\nuser context:");
    for q in entry.context.iter() {
        println!("  > {}", processed.interner.resolve(*q));
    }
    let recs = mvmm.recommend(&entry.context, 5);
    println!("top-5 recommendations:");
    for rec in &recs {
        println!(
            "  {:<40} (score {:.4})",
            processed.interner.resolve(rec.query),
            rec.score
        );
    }
    println!("\nwhat test users actually asked next:");
    for (q, freq) in &entry.top {
        println!("  {:<40} ({} times)", processed.interner.resolve(*q), freq);
    }

    // The quickstart doubles as a smoke test (`cargo run --example
    // quickstart` in CI): the covered context must yield ranked suggestions.
    assert!(!recs.is_empty(), "covered context produced no suggestions");
    assert!(
        recs.windows(2).all(|w| w[0].score >= w[1].score),
        "recommendations are not rank-ordered"
    );
    println!("\nquickstart assertions passed");
}
