//! The raw-log processing pipeline end to end, including serialization:
//! generate Table III-style click logs, round-trip them through the TSV and
//! binary codecs, then segment / aggregate / reduce and print the Table IV
//! statistics.
//!
//! ```sh
//! cargo run --release --example log_pipeline
//! ```

use sqp::logsim::{record, SimConfig};
use sqp::sessions::{aggregate, corpus_stats, reduce, segment_default};
use sqp_common::Interner;

fn main() {
    let logs = sqp::logsim::generate(&SimConfig::small(15_000, 3_000, 99));

    // Raw records look like the paper's Table III.
    println!("first three raw log records (Table III format):");
    for line in record::to_tsv(&logs.train[..3]).lines() {
        println!("  {line}");
    }

    // Round-trip through both codecs — this is how logs would be staged on
    // disk between collection and the nightly model build.
    let tsv = record::to_tsv(&logs.train);
    let reparsed = record::from_tsv(&tsv).expect("TSV round-trip");
    assert_eq!(reparsed, logs.train);
    let blob = record::encode(&logs.train);
    let decoded = record::decode(blob.clone()).expect("binary round-trip");
    assert_eq!(decoded, logs.train);
    println!(
        "\nserialization: {} records; TSV {} KiB vs binary {} KiB",
        logs.train.len(),
        tsv.len() / 1024,
        blob.len() / 1024
    );

    // 30-minute-rule segmentation.
    let sessions = segment_default(&logs.train);
    let stats = corpus_stats(&sessions);
    println!("\nTable IV-style statistics (training epoch):");
    println!("  sessions:        {}", stats.n_sessions);
    println!("  searches:        {}", stats.n_searches);
    println!("  unique queries:  {}", stats.n_unique_queries);
    println!("  mean length:     {:.2}", stats.mean_session_length());

    println!("\nsession-length histogram (Figure 5):");
    for (len, count) in stats.length_histogram.iter() {
        let bar = "#".repeat((count as usize * 50 / stats.n_sessions as usize).max(1));
        println!("  len {len}: {count:>7} {bar}");
    }

    // Aggregation + power law (Figure 6).
    let mut interner = Interner::new();
    let aggregated = aggregate(&sessions, &mut interner);
    let slope = sqp_common::hist::log_log_slope(&aggregated.rank_frequency());
    println!(
        "\naggregation: {} unique sessions; rank/frequency log-log slope {:.2} (Figure 6)",
        aggregated.unique_sessions(),
        slope.unwrap_or(f64::NAN)
    );

    // Reduction (Figure 7).
    let (reduced, report) = reduce(&aggregated, 1);
    println!(
        "reduction (drop freq <= 1): kept {} unique sessions, {:.1}% of the data mass \
         (paper: 60.48% remained)",
        reduced.unique_sessions(),
        report.retention() * 100.0
    );
}
