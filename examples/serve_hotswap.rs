//! Concurrent serving with a zero-downtime retrain.
//!
//! Simulates a burst of traffic against a [`ServeEngine`]: four worker
//! threads track queries and ask for suggestions while the main thread
//! retrains the model on a grown log and hot-swaps it in. No request is
//! dropped, no thread stops, and the generation counter proves the swap
//! landed. Workers are op-bounded so the example terminates quickly even
//! on single-core hosts.
//!
//! ```sh
//! cargo run --release --example serve_hotswap
//! ```

use sqp::core::VmmConfig;
use sqp::logsim::SimConfig;
use sqp::prelude::*;
use sqp::serve::{ModelSpec, TrainingConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WORKERS: u64 = 4;
const OPS_PER_WORKER: u64 = 20_000;

fn main() {
    // Day 1 logs: train the first snapshot. A single VMM keeps the example
    // snappy; swap in `ModelSpec::Mvmm(..)` for the paper's full mixture.
    let day1 = sqp::logsim::generate(&SimConfig::small(2_000, 100, 11)).train;
    let training = TrainingConfig {
        model: ModelSpec::Vmm(VmmConfig::with_epsilon(0.05)),
        ..TrainingConfig::default()
    };
    let engine = Arc::new(
        RecommenderService::from_raw_logs(&day1, &training).into_engine(EngineConfig::default()),
    );
    println!(
        "serving {} ({} sessions, |Q| = {})",
        engine.snapshot().model_name(),
        engine.snapshot().trained_sessions(),
        engine.snapshot().vocabulary_size()
    );

    // Traffic replays real queries from the log.
    let vocabulary: Vec<String> = engine
        .snapshot()
        .interner()
        .iter()
        .map(|(_, s)| s.to_owned())
        .collect();

    let served = Arc::new(AtomicU64::new(0));
    let covered = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let engine = Arc::clone(&engine);
            let served = Arc::clone(&served);
            let covered = Arc::clone(&covered);
            let vocabulary = &vocabulary;
            scope.spawn(move || {
                for i in 0..OPS_PER_WORKER {
                    let user = worker * 1_000 + i % 200;
                    let query = &vocabulary[((i * 31 + worker) as usize) % vocabulary.len()];
                    let now = i / 4;
                    let suggestions = engine.track_and_suggest(user, query, 5, now);
                    served.fetch_add(1, Ordering::Relaxed);
                    if !suggestions.is_empty() {
                        covered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // Meanwhile: day 2 arrived — retrain on the grown log and publish
        // while the workers keep serving.
        let mut day2 = day1.clone();
        day2.extend(sqp::logsim::generate(&SimConfig::small(2_000, 100, 12)).train);
        let retrained = Arc::new(ModelSnapshot::from_raw_logs(&day2, &training));
        let generation = engine.publish(Arc::clone(&retrained));
        println!(
            "published generation {generation}: {} sessions, |Q| = {}",
            retrained.trained_sessions(),
            retrained.vocabulary_size()
        );
    });

    let total = served.load(Ordering::Relaxed);
    let hit = covered.load(Ordering::Relaxed);
    println!(
        "served {total} requests across the swap ({hit} covered, {} sessions live)",
        engine.active_sessions()
    );
    assert_eq!(engine.generation(), 1, "swap never landed");
    assert_eq!(total, WORKERS * OPS_PER_WORKER, "dropped requests");
    assert!(hit > 0, "no context was ever covered");
    println!("no request was dropped; suggestions kept flowing through the retrain");
}
