//! Using the library on *your own* search logs: parse Table III-style TSV
//! records, run the pipeline, train a VMM, persist it to disk, reload it in
//! a "serving process", and recommend — the full deployment loop of §V-F.2.
//!
//! ```sh
//! cargo run --release --example custom_corpus
//! ```

use sqp::core::{Vmm, VmmConfig};
use sqp::logsim::record;
use sqp::serve::ModelSnapshot;
use sqp::sessions::{aggregate, reduce, segment_default};
use sqp::store::{load_snapshot, save_snapshot, SnapshotMeta};
use sqp_common::Interner;

/// A tiny hand-written log in the paper's Table III format:
/// machine \t timestamp \t query \t #clicks \t url,ts;…
const RAW_LOG: &str = "\
7\t100\tkidney stones\t1\twww.health.example/a,130
7\t220\tkidney stone symptoms\t0\t
7\t410\tkidney stone symptoms in women\t2\twww.health.example/b,450;www.health.example/c,520
9\t100\tnokia n73\t0\t
9\t230\tnokia n73 themes\t1\twww.phones.example/t,260
9\t6000\tnokia n73\t0\t
9\t6120\tnokia n73 themes\t0\t
9\t9000\tnokia n73\t0\t
9\t9100\tnokia n73 games\t0\t
11\t100\tkidney stones\t0\t
11\t260\tkidney stone symptoms\t0\t
11\t88000\tmuzzle brake\t0\t
";

fn main() {
    // 1. Parse raw logs (yours would come from a file).
    let records = record::from_tsv(RAW_LOG).expect("well-formed TSV");
    println!("parsed {} raw records", records.len());

    // 2. Pipeline: 30-minute segmentation → aggregation → reduction.
    let sessions = segment_default(&records);
    println!("segmented into {} sessions:", sessions.len());
    for s in &sessions {
        println!("  machine {}: {}", s.machine_id, s.queries.join(" => "));
    }
    let mut interner = Interner::new();
    let aggregated = aggregate(&sessions, &mut interner);
    // Keep everything on a corpus this small (the threshold is for noise at
    // scale).
    let (reduced, _) = reduce(&aggregated, 0);

    // 3. Train and persist the *full snapshot* — model plus the interner
    //    its ids are relative to — as one v3 file (the nightly build).
    let vmm = Vmm::train(&reduced.sessions, VmmConfig::with_epsilon(0.05));
    let node_count = vmm.node_count();
    let trained = ModelSnapshot::from_parts(interner, Box::new(vmm), reduced.total_sessions());
    let meta = SnapshotMeta::describe(&trained, 0, records.len() as u64);
    let path = std::env::temp_dir().join("sqp_custom_corpus.sqps");
    save_snapshot(&path, &trained, &meta).expect("write snapshot");
    println!(
        "\ntrained VMM: {} PST nodes, snapshot at {} ({} bytes)",
        node_count,
        path.display(),
        std::fs::metadata(&path).expect("snapshot written").len()
    );

    // 4. Warm-start the "serving process" from the file alone: no raw
    //    logs, no separate interner to ship — strings in, strings out.
    let (served, served_meta) = load_snapshot(&path).expect("valid snapshot file");
    println!(
        "loaded generation {} ({} sessions, {} distinct queries)",
        served_meta.generation,
        served_meta.trained_sessions,
        served.vocabulary_size()
    );
    for context in [
        &["kidney stones", "kidney stone symptoms"][..],
        &["nokia n73"][..],
    ] {
        println!("\nuser context: {}", context.join(" => "));
        println!("suggestions:");
        for s in served.suggest(context, 3) {
            println!("  {:<38} (P = {:.3})", s.query, s.score);
        }
    }
    std::fs::remove_file(&path).ok();
}
