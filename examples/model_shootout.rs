//! All five methods of the paper head to head on one corpus: accuracy
//! (NDCG@5 by context length), coverage, and memory — a miniature of the
//! paper's §V benchmark.
//!
//! ```sh
//! cargo run --release --example model_shootout
//! ```

use sqp::eval::{evaluate_accuracy, overall_coverage, quick_lineup, train_models};
use sqp::logsim::SimConfig;
use sqp::sessions::{process, PipelineConfig};

fn main() {
    let logs = sqp::logsim::generate(&SimConfig::small(40_000, 10_000, 4));
    let processed = process(&logs, &PipelineConfig::default());
    let gt = &processed.ground_truth;
    println!(
        "corpus: {} unique training sessions, {} test contexts\n",
        processed.train.aggregated.unique_sessions(),
        gt.len()
    );

    let models = train_models(&quick_lineup(), &processed.train.aggregated.sessions);

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "method", "NDCG@5", "len1", "len3", "coverage", "memory-KB"
    );
    for (label, model) in &models {
        let pts = evaluate_accuracy(model.as_ref(), gt, 3);
        let overall = sqp::eval::overall_ndcg(model.as_ref(), gt, 5);
        println!(
            "{:<12} {:>8.4} {:>8.4} {:>8.4} {:>9.1}% {:>10}",
            label,
            overall,
            pts[0].ndcg5,
            pts[2].ndcg5,
            overall_coverage(model.as_ref(), gt) * 100.0,
            model.memory_bytes() / 1024,
        );
    }

    println!(
        "\nexpected ordering (paper §V): sequence models beat pair-wise on NDCG; \
         Co-occ. has the best coverage; Adj./VMM/MVMM coverage ties; N-gram trails."
    );
}
