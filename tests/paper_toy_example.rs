//! Integration test: the paper's §IV-B toy example (Table II → Figure 3),
//! verified end to end through the public umbrella API.
//!
//! Every number asserted here is printed in the paper:
//! * the candidate set S′ = {q1q0, q0q1, q0, q1};
//! * P(q0 | q1q0) = 3/10;
//! * D_KL(q0 ‖ q1q0) = 0.3449 (added at ε = 0.1),
//!   D_KL(q1 ‖ q0q1) = 0.0837 (rejected);
//! * the final state set {e, q0, q1, q1q0} with
//!   P(·|q0) = (0.9, 0.1), P(·|q1) = (0.8, 0.2), P(·|q1q0) = (0.3, 0.7);
//! * the walked-through probability of [q0,q1,q0,q1,q1,q0]
//!   = 1 × 0.1 × 0.8 × 0.7 × 0.2 × 0.8;
//! * the two recommendation examples (q0 after q0; q1 after [q1,q0]).

use sqp::core::toy::{toy_corpus, toy_test_sequence, TOY_EPSILON, TOY_TEST_SEQUENCE_PROB};
use sqp::core::{Recommender, SequenceScorer, Vmm, VmmConfig};
use sqp_common::{seq, QueryId};

fn q0() -> QueryId {
    QueryId(0)
}
fn q1() -> QueryId {
    QueryId(1)
}

#[test]
fn full_figure3_reproduction() {
    let vmm = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(TOY_EPSILON));

    // State set: root + q0 + q1 + q1q0; q0q1 rejected.
    assert_eq!(vmm.node_count(), 4);
    assert!(vmm.pst().contains(&seq(&[0])));
    assert!(vmm.pst().contains(&seq(&[1])));
    assert!(vmm.pst().contains(&seq(&[1, 0])));
    assert!(!vmm.pst().contains(&seq(&[0, 1])));

    // Node distributions, to 1e-12.
    let cases = [
        (seq(&[0]), 0.9, 0.1),
        (seq(&[1]), 0.8, 0.2),
        (seq(&[1, 0]), 0.3, 0.7),
    ];
    for (ctx, p0, p1) in cases {
        assert!((vmm.cond_prob(&ctx, q0()) - p0).abs() < 1e-12, "{ctx:?}");
        assert!((vmm.cond_prob(&ctx, q1()) - p1).abs() < 1e-12, "{ctx:?}");
    }

    // Root prior = occurrence frequencies: 187/218 vs 31/218.
    assert!((vmm.cond_prob(&[], q0()) - 187.0 / 218.0).abs() < 1e-12);
    assert!((vmm.cond_prob(&[], q1()) - 31.0 / 218.0).abs() < 1e-12);

    // The paper's test-sequence probability.
    let p = 10f64.powf(vmm.sequence_log10_prob(&toy_test_sequence()));
    assert!((p - TOY_TEST_SEQUENCE_PROB).abs() < 1e-12, "p = {p}");

    // Recommendation examples from §IV-B.2.
    assert_eq!(vmm.recommend(&seq(&[0]), 1)[0].query, q0());
    assert_eq!(vmm.recommend(&seq(&[1, 0]), 1)[0].query, q1());
}

#[test]
fn conditional_probability_table_ii() {
    // P(q0|[q1,q0]) = 3/10 straight from the window counts.
    let counts = sqp::core::counts::WindowCounts::build(&toy_corpus(), None);
    let e = counts.entry(&seq(&[1, 0])).unwrap();
    assert_eq!(e.next_count(q0()), 3);
    assert_eq!(e.next_total(), 10);

    // Candidate set S′ (no filtering).
    let cands = counts.candidates(1);
    assert_eq!(
        cands,
        vec![seq(&[0]), seq(&[1]), seq(&[0, 1]), seq(&[1, 0])]
    );
}

#[test]
fn kl_thresholds_bracket_epsilon() {
    // ε below 0.0837 admits both depth-2 states; between 0.0837 and 0.3449
    // admits only q1q0; above 0.3449 admits neither.
    let narrow = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.05));
    assert!(narrow.pst().contains(&seq(&[0, 1])));
    assert!(narrow.pst().contains(&seq(&[1, 0])));

    let paper = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.1));
    assert!(!paper.pst().contains(&seq(&[0, 1])));
    assert!(paper.pst().contains(&seq(&[1, 0])));

    let wide = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(0.35));
    assert!(!wide.pst().contains(&seq(&[1, 0])));
    assert_eq!(wide.node_count(), 3);
}

#[test]
fn escape_of_unseen_context_matches_eq6() {
    // §IV-C.1(b): context q1q1 escapes to state q1 with probability
    // ‖[e,q1]‖ / ‖q1‖ = 18/31.
    let vmm = Vmm::train(&toy_corpus(), VmmConfig::with_epsilon(TOY_EPSILON));
    let esc = vmm.escape_prob(&seq(&[1, 1]));
    assert!((esc - 18.0 / 31.0).abs() < 1e-12);
    let p = vmm.cond_prob_escaped(&seq(&[1, 1]), q0());
    assert!((p - esc * 0.8).abs() < 1e-12);
}

#[test]
fn mvmm_on_toy_corpus_agrees_with_components() {
    use sqp::core::{Mvmm, MvmmConfig};
    let mvmm = Mvmm::train(&toy_corpus(), &MvmmConfig::small());
    // All components share the exact states for these contexts, so the
    // mixture must reproduce the paper's recommendations.
    assert_eq!(mvmm.recommend(&seq(&[0]), 1)[0].query, q0());
    assert_eq!(mvmm.recommend(&seq(&[1, 0]), 1)[0].query, q1());
    // And the mixture weights are a proper distribution.
    let w: f64 = mvmm
        .component_weights(&seq(&[1, 0]))
        .into_iter()
        .flatten()
        .sum();
    assert!((w - 1.0).abs() < 1e-9);
}

#[test]
fn ndcg_eq11_worked_example() {
    // A hand-computed Eq. (11) check through the eval crate: truth ratings
    // (5,4,3,2,1), prediction hits positions (2,1) then misses.
    // DCG = (2^4-1)/log10(2) + (2^5-1)/log10(3) = 15/0.30103 + 31/0.47712
    // IDCG = 31/0.30103 + 15/0.47712 + 7/log10(4) + 3/log10(5) + 1/log10(6)
    let truth: Vec<(QueryId, u64)> = (0..5).map(|i| (QueryId(i), 50 - i as u64)).collect();
    let predicted = vec![QueryId(1), QueryId(0)];
    let got = sqp::eval::ndcg_at(&predicted, &truth, 5);
    let dcg = 15.0 / (2f64).log10() + 31.0 / (3f64).log10();
    let idcg = 31.0 / (2f64).log10()
        + 15.0 / (3f64).log10()
        + 7.0 / (4f64).log10()
        + 3.0 / (5f64).log10()
        + 1.0 / (6f64).log10();
    assert!((got - dcg / idcg).abs() < 1e-12, "got {got}");
}
