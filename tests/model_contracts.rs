//! Integration test: behavioural contracts every recommender must satisfy,
//! checked uniformly across the five methods through the trait object API.

use sqp::eval::{quick_lineup, train_models};
use sqp::logsim::SimConfig;
use sqp::sessions::{process, PipelineConfig};
use sqp_common::{QueryId, QuerySeq};

fn corpus() -> (Vec<(QuerySeq, u64)>, Vec<QuerySeq>) {
    let logs = sqp::logsim::generate(&SimConfig::small(8_000, 2_000, 5));
    let processed = process(&logs, &PipelineConfig::default());
    let contexts: Vec<QuerySeq> = processed
        .ground_truth
        .entries
        .iter()
        .take(300)
        .map(|e| e.context.clone())
        .collect();
    (processed.train.aggregated.sessions.clone(), contexts)
}

#[test]
fn recommendations_respect_k_and_ordering() {
    let (sessions, contexts) = corpus();
    for (label, model) in train_models(&quick_lineup(), &sessions) {
        for ctx in &contexts {
            for k in [0usize, 1, 3, 5, 10] {
                let recs = model.recommend(ctx, k);
                assert!(recs.len() <= k, "{label}: len {} > k {k}", recs.len());
                for w in recs.windows(2) {
                    assert!(w[0].score >= w[1].score, "{label}: scores not descending");
                }
                // No duplicate queries in one list.
                let mut seen = std::collections::HashSet::new();
                for r in &recs {
                    assert!(seen.insert(r.query), "{label}: duplicate {:?}", r.query);
                }
                // Scores are positive, finite model evidence.
                for r in &recs {
                    assert!(r.score.is_finite() && r.score > 0.0, "{label}");
                }
            }
        }
    }
}

#[test]
fn covers_agrees_with_recommend() {
    let (sessions, contexts) = corpus();
    for (label, model) in train_models(&quick_lineup(), &sessions) {
        for ctx in &contexts {
            let has_recs = !model.recommend(ctx, 1).is_empty();
            assert_eq!(
                model.covers(ctx),
                has_recs,
                "{label}: covers() disagrees with recommend() on {ctx:?}"
            );
        }
    }
}

#[test]
fn retraining_is_deterministic() {
    let (sessions, contexts) = corpus();
    let first = train_models(&quick_lineup(), &sessions);
    let second = train_models(&quick_lineup(), &sessions);
    for ((label, a), (_, b)) in first.iter().zip(&second) {
        for ctx in contexts.iter().take(100) {
            let ra = a.recommend(ctx, 5);
            let rb = b.recommend(ctx, 5);
            assert_eq!(ra.len(), rb.len(), "{label}");
            for (x, y) in ra.iter().zip(&rb) {
                assert_eq!(x.query, y.query, "{label}");
                assert!((x.score - y.score).abs() < 1e-12, "{label}");
            }
        }
        assert_eq!(
            a.memory_bytes(),
            b.memory_bytes(),
            "{label}: memory differs"
        );
    }
}

#[test]
fn empty_and_unknown_contexts() {
    let (sessions, _) = corpus();
    // An id far outside the interned range.
    let unknown = QueryId(u32::MAX - 1);
    for (label, model) in train_models(&quick_lineup(), &sessions) {
        assert!(
            model.recommend(&[], 5).is_empty(),
            "{label}: empty context must be uncovered"
        );
        assert!(
            model.recommend(&[unknown], 5).is_empty(),
            "{label}: unknown query must be uncovered"
        );
        assert!(!model.covers(&[unknown]), "{label}");
    }
}

#[test]
fn long_contexts_do_not_panic_and_stay_consistent() {
    let (sessions, contexts) = corpus();
    let models = train_models(&quick_lineup(), &sessions);
    // Build a very long context by chaining real queries.
    let mut long: Vec<QueryId> = Vec::new();
    for ctx in contexts.iter().take(8) {
        long.extend(ctx.iter().copied());
    }
    for (label, model) in &models {
        let recs = model.recommend(&long, 5);
        assert!(recs.len() <= 5, "{label}");
        // Suffix-matching models must behave identically when the context is
        // extended with an *unknown prefix* (only the usable suffix counts).
        if label.starts_with("VMM") || label == "MVMM" || label == "Adj." || label == "Co-occ." {
            let mut prefixed = vec![QueryId(u32::MAX - 2)];
            prefixed.extend_from_slice(&long);
            let recs2 = model.recommend(&prefixed, 5);
            let ids: Vec<QueryId> = recs.iter().map(|r| r.query).collect();
            let ids2: Vec<QueryId> = recs2.iter().map(|r| r.query).collect();
            assert_eq!(ids, ids2, "{label}: unknown prefix changed the ranking");
        }
    }
}

#[test]
fn memory_accounting_is_positive_and_stable() {
    let (sessions, _) = corpus();
    for (label, model) in train_models(&quick_lineup(), &sessions) {
        let m1 = model.memory_bytes();
        let m2 = model.memory_bytes();
        assert!(m1 > 0, "{label}: zero memory estimate");
        assert_eq!(m1, m2, "{label}: memory estimate not stable");
    }
}

#[test]
fn names_are_stable_api() {
    let (sessions, _) = corpus();
    let labels: Vec<String> = train_models(&quick_lineup(), &sessions)
        .iter()
        .map(|(_, m)| m.name().to_owned())
        .collect();
    assert_eq!(
        labels,
        vec!["Adj.", "Co-occ.", "N-gram", "VMM (0.05)", "MVMM"]
    );
}
