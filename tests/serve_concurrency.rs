//! Concurrency guarantees of the serving subsystem.
//!
//! The load-bearing claim of `sqp-serve` is that a model publication is
//! atomic from every reader's point of view: a suggestion computed while a
//! swap lands comes entirely from the old snapshot or entirely from the new
//! one — ids resolved against one interner are never fed to the other
//! model, and results are never rendered through the wrong interner. The
//! tests here make the two snapshots *distinguishable by construction*
//! (disjoint suggestion vocabularies under a shared context) and hammer the
//! swap from multiple threads, failing on any mixed-provenance result.
//!
//! Also covered: the session tracker's 30-minute idle cutoff, both lazy
//! (on the next `track`/`suggest`) and via the bulk eviction sweep.

use sqp::logsim::RawLogRecord;
use sqp::serve::{
    EngineConfig, ModelSnapshot, ModelSpec, ServeEngine, SuggestRequest, TrackerConfig,
    TrainingConfig,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn rec(machine: u64, ts: u64, q: &str) -> RawLogRecord {
    RawLogRecord {
        machine_id: machine,
        timestamp: ts,
        query: q.into(),
        clicks: vec![],
    }
}

/// A corpus whose every suggestion after "seed" is tagged with `prefix`, so
/// any result's provenance is readable off its text.
fn tagged_snapshot(prefix: &str) -> Arc<ModelSnapshot> {
    let mut records = Vec::new();
    let mut machine = 0u64;
    for continuation in ["alpha", "beta", "gamma"] {
        for _ in 0..4 {
            records.push(rec(machine, 100, "seed"));
            records.push(rec(machine, 160, &format!("{prefix}::{continuation}")));
            machine += 1;
        }
    }
    Arc::new(ModelSnapshot::from_raw_logs(
        &records,
        &TrainingConfig {
            model: ModelSpec::Adjacency,
            ..TrainingConfig::default()
        },
    ))
}

/// Every suggestion a single call returns must carry one snapshot's tag —
/// never a mixture, never an untagged string.
fn provenance_of(suggestions: &[sqp::Suggestion]) -> Option<&'static str> {
    let mut seen: Option<&'static str> = None;
    for s in suggestions {
        let tag = if s.query.starts_with("old::") {
            "old"
        } else if s.query.starts_with("new::") {
            "new"
        } else {
            panic!("suggestion from no known snapshot: {:?}", s.query);
        };
        match seen {
            None => seen = Some(tag),
            Some(prev) => assert_eq!(
                prev, tag,
                "torn read: one suggest call mixed snapshots: {suggestions:?}"
            ),
        }
    }
    seen
}

#[test]
fn suggestions_during_swaps_come_wholly_from_one_snapshot() {
    let engine = Arc::new(ServeEngine::new(
        tagged_snapshot("old"),
        EngineConfig::default(),
    ));
    // Both tracked sessions and stateless contexts are exercised.
    for user in 0..16 {
        engine.track(user, "seed", 1_000);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let saw_old = Arc::new(AtomicU64::new(0));
    let saw_new = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for reader in 0..4u64 {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let saw_old = Arc::clone(&saw_old);
            let saw_new = Arc::clone(&saw_new);
            scope.spawn(move || {
                let reqs: Vec<SuggestRequest> =
                    (0..16).map(|user| SuggestRequest { user, k: 3 }).collect();
                while !stop.load(Ordering::Relaxed) {
                    // Mixed read paths: stateless, tracked, batched.
                    let stateless = engine.suggest_context(&["seed"], 3);
                    assert!(!stateless.is_empty());
                    let tags = [
                        provenance_of(&stateless),
                        provenance_of(&engine.suggest(reader % 16, 3, 1_001)),
                    ];
                    for batch_result in engine.suggest_batch(&reqs, 1_001) {
                        provenance_of(&batch_result);
                    }
                    for tag in tags.into_iter().flatten() {
                        match tag {
                            "old" => saw_old.fetch_add(1, Ordering::Relaxed),
                            _ => saw_new.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                }
            });
        }

        // Writer: flip between the two snapshots many times mid-traffic.
        let new_snapshot = tagged_snapshot("new");
        let old_snapshot = tagged_snapshot("old");
        for flip in 0..200 {
            let next = if flip % 2 == 0 {
                Arc::clone(&new_snapshot)
            } else {
                Arc::clone(&old_snapshot)
            };
            engine.publish(next);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(engine.generation(), 200);
    // With 200 flips under continuous reads, both snapshots must have been
    // observed — otherwise the test never exercised the race.
    assert!(
        saw_old.load(Ordering::Relaxed) > 0,
        "old snapshot never seen"
    );
    assert!(
        saw_new.load(Ordering::Relaxed) > 0,
        "new snapshot never seen"
    );
}

#[test]
fn handles_loaded_before_a_swap_keep_serving_the_old_model() {
    let engine = ServeEngine::new(tagged_snapshot("old"), EngineConfig::default());
    let held = engine.snapshot();
    engine.publish(tagged_snapshot("new"));
    // The held handle is frozen in time; the engine has moved on.
    assert!(held.suggest(&["seed"], 1)[0].query.starts_with("old::"));
    assert!(engine.suggest_context(&["seed"], 1)[0]
        .query
        .starts_with("new::"));
}

#[test]
fn idle_sessions_are_cut_and_evicted_at_the_thirty_minute_rule() {
    let cfg = EngineConfig {
        tracker: TrackerConfig::default(), // 30-minute cutoff
        ..EngineConfig::default()
    };
    let engine = ServeEngine::new(tagged_snapshot("old"), cfg);
    let t0 = 10_000u64;
    for user in 0..50 {
        engine.track(user, "seed", t0);
    }
    assert_eq!(engine.active_sessions(), 50);
    assert!(
        !engine.suggest(7, 3, t0 + 30 * 60).is_empty(),
        "at the cutoff"
    );
    assert!(
        engine.suggest(7, 3, t0 + 30 * 60 + 1).is_empty(),
        "one second past the cutoff the context is dead"
    );

    // Users 0..10 stay active past the others' cutoff.
    for user in 0..10 {
        engine.track(user, "seed", t0 + 30 * 60 + 100);
    }
    let evicted = engine.evict_idle(t0 + 30 * 60 + 101);
    assert_eq!(evicted, 40);
    assert_eq!(engine.active_sessions(), 10);

    // An evicted user's next query starts a fresh session with no stale
    // context bleeding in.
    let outcome = engine.track(20, "seed", t0 + 30 * 60 + 200);
    assert!(outcome.new_session);
    assert_eq!(outcome.context_len, 1);
}

#[test]
fn eviction_races_track_and_suggest_under_concurrent_publishes() {
    // The three mutating paths at once: admission-controlled
    // track_and_suggest traffic, periodic idle-eviction sweeps, and model
    // publishes flipping between distinguishable snapshots. Nothing may
    // tear (provenance stays pure), every non-shed request is answered,
    // and no admission permit may leak.
    let engine = Arc::new(ServeEngine::new(
        tagged_snapshot("old"),
        EngineConfig {
            tracker: TrackerConfig {
                shards: 4,
                idle_cutoff_secs: 50,
                ..TrackerConfig::default()
            },
            max_in_flight: 64,
        },
    ));
    let answered = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for thread in 0..4u64 {
            let engine = Arc::clone(&engine);
            let answered = &answered;
            let shed = &shed;
            scope.spawn(move || {
                for i in 0..3_000u64 {
                    let user = thread * 10_000 + (i % 53);
                    match engine.try_track_and_suggest(user, "seed", 3, i) {
                        Ok(suggestions) => {
                            provenance_of(&suggestions);
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Eviction sweeper: constantly reaps sessions the workers are
        // simultaneously touching (their `now` advances past the cutoff).
        {
            let engine = Arc::clone(&engine);
            let stop = &stop;
            scope.spawn(move || {
                let mut now = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    now += 25;
                    engine.evict_idle(now);
                    std::thread::yield_now();
                }
            });
        }
        // Publisher: flip snapshots throughout.
        let new_snapshot = tagged_snapshot("new");
        let old_snapshot = tagged_snapshot("old");
        for flip in 0..100 {
            let next = if flip % 2 == 0 {
                Arc::clone(&new_snapshot)
            } else {
                Arc::clone(&old_snapshot)
            };
            engine.publish(next);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let total = answered.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed);
    assert_eq!(total, 4 * 3_000, "every request answered or counted shed");
    assert_eq!(engine.in_flight(), 0, "admission permits leaked");
    assert_eq!(engine.stats().shed, shed.load(Ordering::Relaxed));
    // A final sweep drains whatever sessions survived the races.
    engine.evict_idle(u64::MAX);
    assert_eq!(engine.active_sessions(), 0);
}

#[test]
fn tracking_and_eviction_race_cleanly() {
    let engine = Arc::new(ServeEngine::new(
        tagged_snapshot("old"),
        EngineConfig {
            tracker: TrackerConfig {
                shards: 8,
                idle_cutoff_secs: 100,
                ..TrackerConfig::default()
            },
            ..EngineConfig::default()
        },
    ));
    std::thread::scope(|scope| {
        for thread in 0..4u64 {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for i in 0..2_000u64 {
                    let user = thread * 10_000 + (i % 97);
                    engine.track(user, "seed", i);
                    if i % 31 == 0 {
                        engine.evict_idle(i);
                    }
                    if i % 7 == 0 {
                        engine.suggest(user, 2, i);
                    }
                }
            });
        }
    });
    // Deterministic endpoint: a full sweep far in the future clears all.
    let survivors = engine.active_sessions();
    assert!(survivors > 0);
    assert_eq!(engine.evict_idle(1_000_000), survivors);
    assert_eq!(engine.active_sessions(), 0);
}
