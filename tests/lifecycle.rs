//! End-to-end model lifecycle: train on a simulated seed corpus, persist a
//! v3 snapshot, reload it in a fresh context, and verify the warm model is
//! **bit-identical** to the in-memory one — same suggestions, same scores,
//! same coverage — for every model kind the snapshot format supports.
//!
//! Also holds the load path's safety contract at the file level: truncated
//! and corrupted snapshot files fail with typed errors, never panics or
//! partial snapshots (the byte-by-byte sweeps live in `sqp-store`'s unit
//! tests; this exercises a realistic multi-kilobyte snapshot).

use sqp::serve::{ModelSnapshot, ModelSpec, TrainingConfig};
use sqp::store::{load_snapshot, save_snapshot, SnapshotError, SnapshotMeta};
use sqp_core::{BackoffConfig, VmmConfig};

fn seed_records() -> Vec<sqp::logsim::RawLogRecord> {
    sqp::logsim::generate(&sqp::logsim::SimConfig::small(3_000, 400, 11)).train
}

/// Every context the corpus itself exercises: all prefixes of all
/// segmented sessions, as text (capped — the cap covers every distinct
/// session shape many times over).
fn corpus_contexts(records: &[sqp::logsim::RawLogRecord]) -> Vec<Vec<String>> {
    let mut contexts = Vec::new();
    for session in sqp::sessions::segment_default(records) {
        for i in 1..=session.queries.len() {
            contexts.push(session.queries[..i].to_vec());
            if contexts.len() >= 4_000 {
                return contexts;
            }
        }
    }
    contexts
}

fn supported_specs() -> Vec<(&'static str, ModelSpec)> {
    vec![
        ("adjacency", ModelSpec::Adjacency),
        ("cooccurrence", ModelSpec::Cooccurrence),
        ("ngram", ModelSpec::NGram),
        ("backoff", ModelSpec::Backoff(BackoffConfig::default())),
        ("vmm", ModelSpec::Vmm(VmmConfig::bounded(3, 0.05))),
    ]
}

#[test]
fn every_model_kind_round_trips_bit_identically() {
    let records = seed_records();
    let contexts = corpus_contexts(&records);
    assert!(contexts.len() >= 1_000, "corpus produced too few contexts");
    let dir = std::env::temp_dir().join(format!("sqp-lifecycle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    for (name, spec) in supported_specs() {
        let trained = ModelSnapshot::from_raw_logs(
            &records,
            &TrainingConfig {
                model: spec,
                ..TrainingConfig::default()
            },
        );
        let path = dir.join(format!("{name}.sqps"));
        let meta = SnapshotMeta::describe(&trained, 1, records.len() as u64);
        save_snapshot(&path, &trained, &meta).unwrap();

        // "Fresh process": nothing shared with `trained` but the file.
        let (warm, warm_meta) = load_snapshot(&path).unwrap();
        assert_eq!(warm_meta, meta, "{name}");
        assert_eq!(warm.model_name(), trained.model_name(), "{name}");
        assert_eq!(warm.vocabulary_size(), trained.vocabulary_size(), "{name}");
        assert_eq!(
            warm.trained_sessions(),
            trained.trained_sessions(),
            "{name}"
        );

        let mut covered = 0usize;
        for ctx in &contexts {
            let ctx_refs: Vec<&str> = ctx.iter().map(String::as_str).collect();
            let a = trained.suggest(&ctx_refs, 5);
            let b = warm.suggest(&ctx_refs, 5);
            // Bit-identical: query text AND f64 scores compare equal.
            assert_eq!(a, b, "{name} diverged on context {ctx:?}");
            assert_eq!(
                trained.covers(&ctx_refs),
                warm.covers(&ctx_refs),
                "{name} coverage diverged on {ctx:?}"
            );
            covered += usize::from(!a.is_empty());
        }
        assert!(covered > 0, "{name}: no context produced suggestions");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn realistic_snapshot_rejects_truncation_and_corruption_sampled() {
    let records = seed_records();
    let trained = ModelSnapshot::from_raw_logs(
        &records,
        &TrainingConfig {
            model: ModelSpec::Vmm(VmmConfig::bounded(3, 0.05)),
            ..TrainingConfig::default()
        },
    );
    let raw = sqp::store::snapshot_to_bytes(&trained, &SnapshotMeta::default()).unwrap();
    assert!(raw.len() > 10_000, "want a realistic multi-section file");

    // Sampled truncation sweep (the exhaustive byte-by-byte sweep runs on a
    // toy snapshot in sqp-store; at this size sampling keeps the test fast).
    for cut in (0..raw.len()).step_by(97).chain([raw.len() - 1]) {
        assert!(
            sqp::store::snapshot_from_bytes(&raw[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
    // Sampled corruption sweep.
    for i in (0..raw.len()).step_by(131) {
        let mut bad = raw.clone();
        bad[i] ^= 0x5A;
        assert!(
            sqp::store::snapshot_from_bytes(&bad).is_err(),
            "corruption at byte {i} must fail"
        );
    }
    // Wrong container version is its own typed error.
    let mut wrong = raw.clone();
    wrong[4] = 77;
    assert!(matches!(
        sqp::store::snapshot_from_bytes(&wrong),
        Err(SnapshotError::UnsupportedVersion(77))
    ));
}
