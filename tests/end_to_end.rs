//! Integration test: generator → pipeline → all five models → evaluation,
//! asserting the *qualitative shapes* of the paper's §V results. Absolute
//! numbers differ (our substrate is a simulator, not a 2.5B-session
//! commercial log); orderings, crossovers and decay shapes must hold.

use sqp::core::{Adjacency, Cooccurrence, Mvmm, MvmmConfig, NGram, Recommender, Vmm, VmmConfig};
use sqp::eval::{
    coverage_by_length, entropy_by_context_length, overall_coverage, overall_ndcg, reason_analysis,
};
use sqp::logsim::SimConfig;
use sqp::sessions::{process, PipelineConfig, ProcessedLogs};

struct World {
    processed: ProcessedLogs,
    adj: Adjacency,
    cooc: Cooccurrence,
    ngram: NGram,
    vmm: Vmm,
    mvmm: Mvmm,
}

fn world() -> World {
    let logs = sqp::logsim::generate(&SimConfig {
        train_sessions: 40_000,
        test_sessions: 10_000,
        seed: 20_260_608,
        ..SimConfig::default()
    });
    let processed = process(&logs, &PipelineConfig::default());
    let sessions = processed.train.aggregated.sessions.clone();
    World {
        adj: Adjacency::train(&sessions),
        cooc: Cooccurrence::train(&sessions),
        ngram: NGram::train(&sessions),
        vmm: Vmm::train(&sessions, VmmConfig::with_epsilon(0.05)),
        mvmm: Mvmm::train(&sessions, &MvmmConfig::small()),
        processed,
    }
}

#[test]
fn paper_shapes_hold_end_to_end() {
    let w = world();
    let gt = &w.processed.ground_truth;
    assert!(gt.len() > 250, "ground truth too small: {}", gt.len());

    // ---- Figure 8 shape: sequence models beat pair-wise on accuracy. ----
    let ndcg_adj = overall_ndcg(&w.adj, gt, 5);
    let ndcg_cooc = overall_ndcg(&w.cooc, gt, 5);
    let ndcg_ngram = overall_ndcg(&w.ngram, gt, 5);
    let ndcg_vmm = overall_ndcg(&w.vmm, gt, 5);
    let ndcg_mvmm = overall_ndcg(&w.mvmm, gt, 5);

    assert!(
        ndcg_mvmm > ndcg_cooc + 0.05,
        "MVMM {ndcg_mvmm} should clearly beat Co-occ {ndcg_cooc}"
    );
    assert!(
        ndcg_ngram > ndcg_cooc,
        "N-gram {ndcg_ngram} vs Co-occ {ndcg_cooc}"
    );
    // Adjacency beats Co-occurrence (the paper's consistent ~10% gap).
    assert!(
        ndcg_adj > ndcg_cooc,
        "Adj {ndcg_adj} should beat Co-occ {ndcg_cooc}"
    );
    // The sequence models at least match Adjacency overall.
    assert!(
        ndcg_mvmm >= ndcg_adj - 0.02,
        "MVMM {ndcg_mvmm} vs Adj {ndcg_adj}"
    );
    assert!(
        ndcg_vmm >= ndcg_adj - 0.02,
        "VMM {ndcg_vmm} vs Adj {ndcg_adj}"
    );

    // ---- Figure 10 shape: coverage ordering. ----
    let cov_adj = overall_coverage(&w.adj, gt);
    let cov_cooc = overall_coverage(&w.cooc, gt);
    let cov_ngram = overall_coverage(&w.ngram, gt);
    let cov_vmm = overall_coverage(&w.vmm, gt);
    let cov_mvmm = overall_coverage(&w.mvmm, gt);

    assert!(cov_cooc >= cov_adj, "Co-occ {cov_cooc} vs Adj {cov_adj}");
    assert!(
        (cov_vmm - cov_adj).abs() < 1e-9,
        "VMM coverage {cov_vmm} must equal Adj {cov_adj}"
    );
    assert!(
        (cov_mvmm - cov_adj).abs() < 1e-9,
        "MVMM coverage {cov_mvmm} must equal Adj {cov_adj}"
    );
    assert!(cov_ngram < cov_adj, "N-gram {cov_ngram} vs Adj {cov_adj}");
    // Sanity band (paper: 56.8–60.6%; simulator lands in a similar regime).
    assert!(
        (0.35..0.95).contains(&cov_adj),
        "coverage way out of band: {cov_adj}"
    );

    // ---- Figure 11 shape: the N-gram loses coverage at longer contexts
    // while VMM tracks Adjacency. Pointwise, the N-gram can never cover a
    // context VMM misses; beyond length 1 it must strictly lose somewhere,
    // and in aggregate over lengths ≥ 2 the deficit must be real.
    let ng = coverage_by_length(&w.ngram, gt, 5);
    let vm = coverage_by_length(&w.vmm, gt, 5);
    let mut ng_covered = 0u64;
    let mut vm_covered = 0u64;
    let mut deep_total = 0u64;
    for len in 1..5 {
        assert!(
            ng[len].covered_support <= vm[len].covered_support,
            "N-gram covered more than VMM at length {}",
            len + 1
        );
        ng_covered += ng[len].covered_support;
        vm_covered += vm[len].covered_support;
        deep_total += ng[len].total_support;
    }
    assert!(deep_total > 50, "too few deep contexts: {deep_total}");
    assert!(
        (ng_covered as f64) < (vm_covered as f64) * 0.95,
        "N-gram deep coverage {ng_covered} not clearly below VMM {vm_covered}"
    );
    // Coverage decays with context length for the N-gram.
    assert!(ng[0].fraction() > ng[3].fraction());

    // ---- Table VI structure. ----
    let reasons = reason_analysis(gt, &w.processed.train_index, &w.ngram);
    let cooc_counts = &reasons[0].1;
    let adj_counts = &reasons[1].1;
    let ngram_counts = &reasons[3].1;
    use sqp::sessions::UnpredictableReason::*;
    // Reason (3) applies to Adjacency but never to Co-occurrence.
    assert_eq!(cooc_counts.get(OnlyLastPosition), 0);
    assert!(adj_counts.get(OnlyLastPosition) > 0);
    // Reason (4) applies only to the N-gram.
    assert_eq!(adj_counts.get(ContextNotTrained), 0);
    assert!(ngram_counts.get(ContextNotTrained) > 0);
    // New queries exist in the test epoch.
    assert!(cooc_counts.get(NewQuery) > 0);

    // ---- Figure 2 shape: entropy decays with context length. ----
    let entropy = entropy_by_context_length(&w.processed.train.aggregated.sessions, 3);
    assert!(entropy[0].mean_entropy > entropy[1].mean_entropy);
    assert!(entropy[1].mean_entropy >= entropy[2].mean_entropy - 1e-9);

    // ---- Table VII shape: MVMM memory ≈ single VMM, << sum of components.
    let sum: usize = w.mvmm.components().iter().map(|c| c.memory_bytes()).sum();
    assert!(w.mvmm.memory_bytes() < sum);
    // All VMM-family models dwarf the pair-wise models (PST + escape table).
    assert!(w.vmm.memory_bytes() > w.adj.memory_bytes());
}

#[test]
fn corpus_statistics_match_paper_shapes() {
    let logs = sqp::logsim::generate(&SimConfig {
        train_sessions: 30_000,
        test_sessions: 8_000,
        seed: 7,
        ..SimConfig::default()
    });
    let p = process(&logs, &PipelineConfig::default());

    // Mean session length 2–3 (§I cites 2.85/2.31/2.31).
    let mean = p.train.stats.mean_session_length();
    assert!((1.8..3.2).contains(&mean), "mean session length {mean}");

    // Figure 6: power-law slope clearly negative on both epochs.
    for epoch in [&p.train, &p.test] {
        let slope = sqp_common::hist::log_log_slope(&epoch.spectrum).unwrap();
        assert!(slope < -0.4, "slope {slope}");
    }

    // Figure 5/7: histograms decay overall from length 1 to length 4.
    for epoch in [&p.train, &p.test] {
        let h = &epoch.length_hist_before;
        assert!(h.count(1) > h.count(4));
    }

    // Reduction keeps a majority-ish share of mass, like the paper's
    // 60.48%/64.72%.
    assert!((0.35..0.95).contains(&p.train.reduction.retention()));
    assert!((0.35..0.95).contains(&p.test.reduction.retention()));

    // Table IV consistency: searches ≥ sessions; unique ≤ searches.
    assert!(p.train.stats.n_searches >= p.train.stats.n_sessions);
    assert!(p.train.stats.n_unique_queries <= p.train.stats.n_searches);
}

#[test]
fn pattern_distribution_matches_paper_motivation() {
    let logs = sqp::logsim::generate(&SimConfig {
        train_sessions: 30_000,
        test_sessions: 1_000,
        seed: 99,
        ..SimConfig::default()
    });
    let vocab = &logs.truth.vocabulary;
    let sample: Vec<&[String]> = logs
        .truth
        .train_sessions
        .iter()
        .take(20_000)
        .map(|s| s.queries.as_slice())
        .collect();
    let counts = sqp::sessions::patterns::pattern_distribution(sample.iter().copied(), Some(vocab));
    let sensitive = sqp::sessions::patterns::order_sensitive_fraction(&counts);
    // Paper: 34.34%. The simulator is calibrated to land nearby.
    assert!(
        (0.25..0.45).contains(&sensitive),
        "order-sensitive share {sensitive}"
    );
    // Every pattern occurs.
    for (i, c) in counts.iter().enumerate() {
        assert!(*c > 0, "pattern #{i} never classified");
    }
}

#[test]
fn user_study_shapes() {
    let w = world();
    let cfg = sqp::eval::UserEvalConfig {
        per_length: 250,
        ..Default::default()
    };
    let models: Vec<&dyn Recommender> = vec![&w.cooc, &w.adj, &w.ngram, &w.mvmm];
    let res = sqp::eval::run_user_eval(
        &models,
        &w.processed.ground_truth,
        &w.processed.interner,
        &sqp::logsim::generate(&SimConfig {
            train_sessions: 40_000,
            test_sessions: 10_000,
            seed: 20_260_608,
            ..SimConfig::default()
        })
        .truth
        .vocabulary,
        &cfg,
    );
    assert!(res.pool_size > 100);
    // Recall is a proper fraction for every method (pool is the union).
    for m in &res.methods {
        let r = m.recall(res.pool_size);
        assert!((0.0..=1.0).contains(&r), "{}: recall {r}", m.name);
    }
    // Fig 13 shape: Co-occ predicts the most queries with the worst
    // precision; the sequence models are clearly more precise.
    let cooc = &res.methods[0];
    let mvmm = &res.methods[3];
    assert!(cooc.predicted >= mvmm.predicted);
    assert!(
        mvmm.precision() > cooc.precision() + 0.05,
        "MVMM {} vs Co-occ {}",
        mvmm.precision(),
        cooc.precision()
    );
}
