//! Integration test: the beyond-paper subsystems — back-off N-gram, HMM,
//! model persistence, alternative segmentation, MRR/hit-rate — exercised
//! together through the umbrella API on a simulated corpus.

use sqp::core::{BackoffConfig, BackoffNgram, Hmm, HmmConfig, Vmm, VmmConfig};
use sqp::eval::{hit_rate, mean_reciprocal_rank, overall_coverage, overall_ndcg};
use sqp::logsim::SimConfig;
use sqp::sessions::{process, PipelineConfig, SegmentStrategy};

fn processed() -> sqp::sessions::ProcessedLogs {
    let logs = sqp::logsim::generate(&SimConfig::small(15_000, 4_000, 123));
    process(&logs, &PipelineConfig::default())
}

#[test]
fn backoff_ngram_competes_with_vmm() {
    let p = processed();
    let sessions = &p.train.aggregated.sessions;
    let gt = &p.ground_truth;

    let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));
    let backoff = BackoffNgram::train(sessions, BackoffConfig::default());

    // Same structural coverage: both bottom out at the current query.
    assert!(
        (overall_coverage(&backoff, gt) - overall_coverage(&vmm, gt)).abs() < 1e-9,
        "coverage should tie"
    );
    // Accuracy in the same band (both are suffix-context models).
    let n_vmm = overall_ndcg(&vmm, gt, 5);
    let n_bo = overall_ndcg(&backoff, gt, 5);
    assert!(
        (n_vmm - n_bo).abs() < 0.1,
        "VMM {n_vmm} vs Backoff {n_bo} diverge too much"
    );
    assert!(n_bo > 0.3);
}

#[test]
fn hmm_learns_but_trails_explicit_context_models() {
    let p = processed();
    let sessions = &p.train.aggregated.sessions;
    let gt = &p.ground_truth;

    let hmm = Hmm::train(
        sessions,
        HmmConfig {
            n_states: 8,
            iterations: 6,
            max_sequences: 800,
            ..HmmConfig::default()
        },
    );
    // EM monotonicity on real data.
    for w in hmm.log_likelihood_trace.windows(2) {
        assert!(w[1] >= w[0] - 1e-6, "EM likelihood decreased");
    }
    // The HMM predicts something meaningful…
    let n_hmm = overall_ndcg(&hmm, gt, 5);
    assert!(n_hmm > 0.05, "HMM NDCG {n_hmm} is noise-level");
    // …but the paper-lineup VMM stays ahead (the §VI answer).
    let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));
    assert!(
        overall_ndcg(&vmm, gt, 5) > n_hmm,
        "explicit-context model should lead on sparse sessions"
    );
}

#[test]
fn persistence_roundtrip_preserves_evaluation_metrics() {
    let p = processed();
    let sessions = &p.train.aggregated.sessions;
    let gt = &p.ground_truth;

    let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));
    let (kind, blob) = sqp::core::model_to_bytes(&vmm).expect("serialize");
    assert_eq!(kind, sqp::core::ModelKind::Vmm);
    let restored = sqp::core::model_from_bytes(kind, blob).expect("roundtrip");

    assert_eq!(
        overall_ndcg(&vmm, gt, 5),
        overall_ndcg(restored.as_ref(), gt, 5)
    );
    assert_eq!(
        overall_coverage(&vmm, gt),
        overall_coverage(restored.as_ref(), gt)
    );
    assert_eq!(
        mean_reciprocal_rank(&vmm, gt, 5),
        mean_reciprocal_rank(restored.as_ref(), gt, 5)
    );
}

#[test]
fn mrr_and_hit_rate_preserve_paper_orderings() {
    let p = processed();
    let sessions = &p.train.aggregated.sessions;
    let gt = &p.ground_truth;

    let cooc = sqp::core::Cooccurrence::train(sessions);
    let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));

    // The second lens agrees with NDCG: sequence model above Co-occurrence.
    assert!(mean_reciprocal_rank(&vmm, gt, 5) > mean_reciprocal_rank(&cooc, gt, 5));
    assert!(hit_rate(&vmm, gt, 5) >= hit_rate(&cooc, gt, 5) - 0.02);
    // Hit rate grows with k.
    assert!(hit_rate(&vmm, gt, 5) >= hit_rate(&vmm, gt, 1));
}

#[test]
fn similarity_enhanced_segmentation_changes_the_corpus_sanely() {
    let logs = sqp::logsim::generate(&SimConfig::small(5_000, 500, 9));
    let plain = sqp::sessions::segment_with(
        &logs.train,
        SegmentStrategy::TimeGap {
            cutoff_secs: 30 * 60,
        },
    );
    let enhanced = sqp::sessions::segment_with(
        &logs.train,
        SegmentStrategy::SimilarityEnhanced {
            cutoff_secs: 30 * 60,
            hard_factor: 4,
        },
    );
    // Same records, fewer-or-equal sessions, same total query mass.
    let mass =
        |ss: &[sqp::sessions::TextSession]| -> usize { ss.iter().map(|s| s.queries.len()).sum() };
    assert_eq!(mass(&plain), mass(&enhanced));
    assert!(enhanced.len() <= plain.len());
    // And the merged sessions are longer on average.
    let mean = |ss: &[sqp::sessions::TextSession]| mass(ss) as f64 / ss.len() as f64;
    assert!(mean(&enhanced) >= mean(&plain));
}

#[test]
fn hmm_sequence_scoring_is_well_behaved() {
    use sqp::core::SequenceScorer;
    let p = processed();
    let sessions = &p.train.aggregated.sessions;
    let hmm = Hmm::train(
        sessions,
        HmmConfig {
            n_states: 4,
            iterations: 4,
            max_sequences: 300,
            ..HmmConfig::default()
        },
    );
    for (s, _) in sessions.iter().take(50).filter(|(s, _)| s.len() >= 2) {
        let lp = hmm.sequence_log10_prob(s);
        assert!(lp.is_finite());
        assert!(lp <= 0.0, "sequence log-prob {lp} > 0");
    }
}
