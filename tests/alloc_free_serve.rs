//! The serve path must not allocate: longest-suffix matching, conditional
//! probabilities, escape recursion and top-k into a reused buffer all run on
//! the arena structures (binary-searched sorted slices), so a warmed-up
//! prediction call performs zero heap allocations.
//!
//! Verified with a counting global allocator. This file holds exactly one
//! test so no concurrent test can pollute the counter.

use sqp::core::{Recommender, Vmm, VmmConfig};
use sqp_common::seq;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn prediction_serve_path_is_allocation_free() {
    // A corpus large enough that distributions have real fan-out.
    let logs = sqp::logsim::generate(&sqp::logsim::SimConfig::small(4_000, 200, 13));
    let processed = sqp::sessions::process(&logs, &sqp::sessions::PipelineConfig::default());
    let sessions = &processed.train.aggregated.sessions;
    let vmm = Vmm::train(sessions, VmmConfig::with_epsilon(0.05));

    let contexts: Vec<_> = processed
        .ground_truth
        .entries
        .iter()
        .take(64)
        .map(|e| e.context.clone())
        .collect();
    assert!(!contexts.is_empty(), "ground truth must not be empty");
    let probe = seq(&[3, 1]);

    // Warm up: the reusable buffer reaches its steady-state capacity.
    let mut buf = Vec::with_capacity(16);
    for ctx in &contexts {
        vmm.recommend_into(ctx, 5, &mut buf);
        let _ = vmm.cond_prob(ctx, probe[0]);
        let _ = vmm.cond_prob_escaped(ctx, probe[0]);
        let _ = vmm.escape_prob(&probe);
        let _ = vmm.covers(ctx);
    }

    // Measure: the whole serve path, many times over.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..200 {
        for ctx in &contexts {
            vmm.recommend_into(ctx, 5, &mut buf);
            let _ = vmm.cond_prob(ctx, probe[0]);
            let _ = vmm.cond_prob_escaped(ctx, probe[0]);
            let _ = vmm.escape_prob(&probe);
            let _ = vmm.covers(ctx);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "serve path allocated {} times in {} calls",
        after - before,
        200 * contexts.len() * 5,
    );
}
